package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// locksafe: no blocking call while an accounting mutex is held.
//
// The bug class is concrete and has shipped twice: PR 4's healthz
// endpoint stalled behind an fsync'ing snapshot because a health read
// shared a mutex with the durability path, and PR 5's SSE watchers kept
// graceful shutdown from finishing. Both were caught by differential
// tests after the fact; this analyzer catches them at review time.
//
// Scope: packages internal/stream, internal/service, internal/persist —
// the lock-holding accounting core. Within each function the analyzer
// computes held regions per mutex (Lock()..Unlock() in source order;
// `defer Unlock()` extends to the function end) and flags, inside a
// region, calls that can block:
//
//   - direct I/O and sleeps: os file operations, (*os.File) methods,
//     net dials/listens, anything in net/http, syscall fsyncs,
//     (*bufio.Writer).Flush, time.Sleep;
//   - the durability layers by contract: any call into internal/persist
//     or internal/enginecache from outside them, and the
//     stream.EngineStore interface (its implementations do disk I/O);
//   - sends on channels this function made unbuffered (sends inside a
//     select with a default are non-blocking and exempt);
//   - package-local functions that transitively do any of the above
//     (a conservative intraprocedural fixpoint over the package's call
//     graph; the reported message names the chain).
//
// The walk is deliberately conservative rather than sound: it does not
// follow interface dispatch (beyond EngineStore), function values, or
// cross-package calls outside the durability layers. Escape hatch:
// `//tplvet:allow locksafe <reason>` on the blocking call, on the
// Lock() line, or on the mutex field declaration (for mutexes that
// order I/O by design, like the session step lock).

// Locksafe is the analyzer instance.
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flags blocking calls made while an accounting mutex is held",
	Run:  runLocksafe,
}

// locksafeScope lists the package path fragments in scope.
var locksafeScope = []string{"internal/stream", "internal/service", "internal/persist"}

// blockingFuncs are fully-qualified functions/methods that block.
var blockingFuncs = map[string]bool{
	"time.Sleep": true,

	"os.Open": true, "os.OpenFile": true, "os.Create": true, "os.CreateTemp": true,
	"os.Rename": true, "os.Remove": true, "os.RemoveAll": true,
	"os.Mkdir": true, "os.MkdirAll": true, "os.MkdirTemp": true,
	"os.ReadFile": true, "os.WriteFile": true, "os.ReadDir": true,
	"os.Stat": true, "os.Lstat": true, "os.Truncate": true,
	"os.Symlink": true, "os.Link": true, "os.Chmod": true,

	"(*os.File).Sync": true, "(*os.File).Write": true, "(*os.File).WriteString": true,
	"(*os.File).WriteAt": true, "(*os.File).Read": true, "(*os.File).ReadAt": true,
	"(*os.File).Close": true, "(*os.File).Truncate": true,

	"net.Dial": true, "net.DialTimeout": true, "net.Listen": true,

	"syscall.Fsync": true, "syscall.Fdatasync": true,

	"(*bufio.Writer).Flush": true,

	// The engine store interface is I/O by contract: its one production
	// implementation (internal/enginecache) reads and writes disk.
	"(repro/internal/stream.EngineStore).Load":  true,
	"(repro/internal/stream.EngineStore).Store": true,
}

// blockingPkgs are whole packages whose every call blocks by contract
// when made from outside them: the durability layers fsync, rename and
// group-commit. In-package calls are handled by the fixpoint instead,
// so persist's own helpers are not all tarred as blocking.
var blockingPkgs = []string{"internal/persist", "internal/enginecache", "net/http", "net"}

// inLocksafeScope reports whether a package path is analyzed.
func inLocksafeScope(path string) bool {
	for _, s := range locksafeScope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// directBlockReason classifies a call as directly blocking, returning a
// human-readable reason ("" = not blocking). pkgPath is the analyzed
// package (for the outside-the-layer test).
func directBlockReason(info *types.Info, call *ast.CallExpr, pkgPath string) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	name := fn.FullName()
	if blockingFuncs[name] {
		return name + " blocks"
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() != pkgPath {
		for _, bp := range blockingPkgs {
			if pkg.Path() == bp || strings.HasSuffix(pkg.Path(), bp) {
				return name + " reaches the " + pkg.Path() + " layer (I/O by contract)"
			}
		}
	}
	return ""
}

// funcUnit is one analyzed body: a FuncDecl or a FuncLit. FuncLits get
// their own unit because a closure built under a lock usually runs
// after it is released; treating its body as lock-held would drown the
// real findings in false positives.
type funcUnit struct {
	name string
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for FuncLits
}

// collectUnits gathers every function body in the file.
func collectUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				units = append(units, funcUnit{name: fn.Name.Name, body: fn.Body, decl: fn})
			}
		case *ast.FuncLit:
			units = append(units, funcUnit{name: "func literal", body: fn.Body})
		}
		return true
	})
	return units
}

// walkShallow visits the statements of body without descending into
// nested function literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return visit(n)
	})
}

// mutexCall decodes a call like x.mu.Lock() into (key, method, mutex
// object) when the method is a sync.Mutex/RWMutex lock primitive. The
// key is the printed receiver expression — two calls on the same
// textual path are treated as the same mutex, which is exactly the
// intraprocedural notion needed.
func mutexCall(info *types.Info, call *ast.CallExpr) (key, method string, obj types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", nil
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", nil
	}
	switch named := recvNamed(recv.Type()); named {
	case "Mutex", "RWMutex":
	default:
		return "", "", nil
	}
	// The declared object behind the receiver path, for decl-site allows.
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	return types.ExprString(sel.X), fn.Name(), obj
}

// recvNamed unwraps a receiver type to its named type's name.
func recvNamed(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// lockRegion is one held interval of one mutex within a function body.
type lockRegion struct {
	key      string
	lockPos  token.Pos // the Lock() call
	declPos  token.Pos // the mutex object's declaration (may be NoPos)
	start    token.Pos
	end      token.Pos
	readOnly bool // RLock
}

// lockRegions computes the held intervals of a function body. For each
// Lock/RLock at position P: if the body defers the matching Unlock, the
// region runs to the body end; otherwise it ends at the next matching
// Unlock after P in source order (or the body end when none exists —
// the conservative reading of branchy unlock placement).
func lockRegions(info *types.Info, body *ast.BlockStmt) []lockRegion {
	type event struct {
		pos      token.Pos
		key      string
		method   string
		deferred bool
		obj      types.Object
	}
	var events []event
	walkShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if key, method, obj := mutexCall(info, st.Call); key != "" {
				events = append(events, event{pos: st.Pos(), key: key, method: method, deferred: true, obj: obj})
			}
			return false
		case *ast.CallExpr:
			if key, method, obj := mutexCall(info, st); key != "" {
				events = append(events, event{pos: st.Pos(), key: key, method: method, obj: obj})
			}
		}
		return true
	})
	deferredUnlock := make(map[string]bool)
	for _, e := range events {
		if e.deferred && (e.method == "Unlock" || e.method == "RUnlock") {
			deferredUnlock[e.key] = true
		}
	}
	var regions []lockRegion
	for _, e := range events {
		if e.deferred || (e.method != "Lock" && e.method != "RLock") {
			continue
		}
		r := lockRegion{key: e.key, lockPos: e.pos, start: e.pos, end: body.End(), readOnly: e.method == "RLock"}
		if e.obj != nil {
			r.declPos = e.obj.Pos()
		}
		if !deferredUnlock[e.key] {
			for _, u := range events {
				if !u.deferred && u.key == e.key && (u.method == "Unlock" || u.method == "RUnlock") && u.pos > e.pos {
					r.end = u.pos
					break
				}
			}
		}
		regions = append(regions, r)
	}
	return regions
}

// unbufferedChans returns the objects of local variables bound to
// make(chan T) with no capacity in this body.
func unbufferedChans(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "make" {
			return
		}
		if _, isChan := info.TypeOf(call.Args[0]).(*types.Chan); !isChan {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	walkShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					bind(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					bind(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// blockingSite is one blocking operation found in a body.
type blockingSite struct {
	pos    token.Pos
	reason string
}

// blockingSites finds the blocking operations of a body: direct calls,
// calls to package-local functions marked blocking by the fixpoint, and
// unbuffered-channel sends outside select/default.
func blockingSites(info *types.Info, pkgPath string, body *ast.BlockStmt, marked map[*types.Func]string) []blockingSite {
	unbuf := unbufferedChans(info, body)
	// Sends inside a select that has a default clause never block.
	nonBlockingSend := make(map[*ast.SendStmt]bool)
	walkShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if send, ok := c.(*ast.CommClause).Comm.(*ast.SendStmt); ok {
				nonBlockingSend[send] = true
			}
		}
		return true
	})
	var sites []blockingSite
	walkShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if reason := directBlockReason(info, st, pkgPath); reason != "" {
				sites = append(sites, blockingSite{pos: st.Pos(), reason: reason})
			} else if fn := calleeFunc(info, st); fn != nil {
				if chain, ok := marked[fn]; ok {
					sites = append(sites, blockingSite{pos: st.Pos(), reason: fn.Name() + " " + chain})
				}
			}
		case *ast.SendStmt:
			if nonBlockingSend[st] {
				return true
			}
			if id, ok := ast.Unparen(st.Chan).(*ast.Ident); ok {
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if obj != nil && unbuf[obj] {
					sites = append(sites, blockingSite{pos: st.Pos(), reason: "send on unbuffered channel " + id.Name + " blocks until a receiver is ready"})
				}
			}
		}
		return true
	})
	return sites
}

// markBlockingFuncs runs the package-local fixpoint: a function is
// blocking if its body (FuncLits excluded) contains a direct blocking
// call or a call to an already-marked package function. The value is
// the reason chain for the report.
func markBlockingFuncs(pkg *Package) map[*types.Func]string {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	marked := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if _, done := marked[fn]; done {
				continue
			}
			var reason string
			walkShallow(fd.Body, func(n ast.Node) bool {
				if reason != "" {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if r := directBlockReason(pkg.Info, call, pkg.Path); r != "" {
					reason = "calls " + r
					return false
				}
				if callee := calleeFunc(pkg.Info, call); callee != nil && callee != fn {
					if chain, ok := marked[callee]; ok {
						reason = "calls " + callee.Name() + ", which " + chain
						return false
					}
				}
				return true
			})
			if reason != "" {
				marked[fn] = reason
				changed = true
			}
		}
	}
	return marked
}

// runLocksafe is the per-package entry point.
func runLocksafe(pass *Pass) {
	if !inLocksafeScope(pass.Pkg.Path) {
		return
	}
	marked := markBlockingFuncs(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		for _, unit := range collectUnits(f) {
			regions := lockRegions(pass.Pkg.Info, unit.body)
			if len(regions) == 0 {
				continue
			}
			sites := blockingSites(pass.Pkg.Info, pass.Pkg.Path, unit.body, marked)
			for _, site := range sites {
				for _, r := range regions {
					if site.pos <= r.start || site.pos >= r.end {
						continue
					}
					// Honor allows at the blocking call (Reportf), at the
					// Lock() site, and at the mutex field declaration.
					if pass.Allowed(r.lockPos) || pass.Allowed(r.declPos) {
						continue
					}
					kind := "write lock"
					if r.readOnly {
						kind = "read lock"
					}
					lockLine := pass.Pkg.Fset.Position(r.lockPos).Line
					pass.Reportf(site.pos, "%s while holding the %s of %s (locked at line %d): %s",
						blockVerb(site.reason), kind, r.key, lockLine, site.reason)
					break // one report per site is enough
				}
			}
		}
	}
}

// blockVerb phrases the finding head.
func blockVerb(reason string) string {
	if strings.HasPrefix(reason, "send on") {
		return "channel send may block"
	}
	return "blocking call"
}
