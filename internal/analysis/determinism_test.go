package analysis

import "testing"

func TestDeterminismFindings(t *testing.T) {
	runFixture(t, "determinism", "repro/internal/persist/fixture", []*Analyzer{Determinism})
}

func TestDeterminismFunctionScope(t *testing.T) {
	// In internal/core only snapshot/replay-named functions are scoped.
	runFixture(t, "determinismscope", "repro/internal/core/fixture", []*Analyzer{Determinism})
}

func TestDeterminismOutOfScope(t *testing.T) {
	expectClean(t, "determinism", "repro/tools/fixture", []*Analyzer{Determinism})
}
