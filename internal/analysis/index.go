package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Cross-package facts. Wire structs are declared in one package
// (internal/stream's ServerState, internal/service's sessionState) and
// constructed in others, so the unkeyed-literal check needs a table
// built over every package of the run before any single-package pass
// executes.

// wireMarkRe matches the wire marker: `//tplvet:wire v<N>` optionally
// followed by ` schema=<hex>`.
var wireMarkRe = regexp.MustCompile(`^tplvet:wire\s+(v\d+)(?:\s+schema=([0-9a-f]+))?\s*$`)

// WireStruct is one `//tplvet:wire`-marked struct.
type WireStruct struct {
	// Version is the declared wire version ("v2").
	Version string
	// RecordedSchema is the schema= hash on the marker ("" if absent).
	RecordedSchema string
	// ActualSchema is the hash of the struct's current field set.
	ActualSchema string
	// MarkerPos is the marker comment's position.
	MarkerPos token.Pos
	// NamePos is the declared type name's position; findings about the
	// marker anchor here (a comment line cannot carry another comment,
	// so reports and allows live on the declaration line).
	NamePos token.Pos
	// NonStruct is set when the marker decorates a non-struct type.
	NonStruct bool
}

// Index is the cross-package fact table for one run.
type Index struct {
	// Wire maps the named type of each marked struct to its marker.
	Wire map[*types.TypeName]*WireStruct
}

// BuildIndex scans every package's type declarations for wire markers.
func BuildIndex(pkgs []*Package) *Index {
	idx := &Index{Wire: make(map[*types.TypeName]*WireStruct)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					mark, pos := wireMarker(gd, ts)
					if mark == nil {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					ws := &WireStruct{Version: mark[1], RecordedSchema: mark[2], MarkerPos: pos, NamePos: ts.Name.Pos()}
					st, ok := obj.Type().Underlying().(*types.Struct)
					if !ok {
						ws.NonStruct = true
					} else {
						ws.ActualSchema = schemaHash(obj.Pkg(), st)
					}
					idx.Wire[obj] = ws
				}
			}
		}
	}
	return idx
}

// wireMarker finds a wire marker in the doc comment of a type spec (or
// its enclosing GenDecl). Returns the regexp groups and the comment pos.
func wireMarker(gd *ast.GenDecl, ts *ast.TypeSpec) ([]string, token.Pos) {
	for _, doc := range []*ast.CommentGroup{ts.Doc, ts.Comment, gd.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if m := wireMarkRe.FindStringSubmatch(text); m != nil {
				return m, c.Pos()
			}
		}
	}
	return nil, token.NoPos
}

// schemaHash fingerprints a struct's wire-relevant shape: field names
// and types in declaration order. Any addition, removal, rename,
// reorder or retype changes the hash, which forces the marker line —
// and with it a reviewed version decision — to change in the same diff.
// Unexported fields count too: gob (the session codec) skips them, but
// the hand-rolled binary encodings do not, and a hash that ignored them
// would wave half the schema through.
func schemaHash(pkg *types.Package, st *types.Struct) string {
	qual := types.RelativeTo(pkg)
	var b strings.Builder
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		b.WriteString(f.Name())
		b.WriteByte(' ')
		b.WriteString(types.TypeString(f.Type(), qual))
		b.WriteByte(';')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:6])
}
