package analysis

import (
	"go/ast"
	"go/types"
)

// wirecompat: persisted schemas evolve only through a reviewed version
// decision. Structs that cross the durability boundary — the persist
// envelope bodies, snapshot state, journal records, topology documents
// — carry a marker:
//
//	//tplvet:wire v2 schema=3f6c0a1d9b42
//
// The schema hash fingerprints the field set (names + types, in
// order). Editing any field breaks the hash, so the marker line must
// change in the same diff: the analyzer prints the new hash, and the
// author decides — and the reviewer sees — whether the change is
// compatible (update schema=) or needs a version bump (vN+1 plus the
// decoder work). A field added silently, the failure mode that corrupts
// a restore, cannot pass CI.
//
// Composite literals of wire structs must be keyed everywhere: an
// unkeyed literal binds by position, so the very field addition the
// marker governs would silently shift every later value into the wrong
// slot at the literal site.

// Wirecompat is the analyzer instance.
var Wirecompat = &Analyzer{
	Name: "wirecompat",
	Doc:  "enforces schema markers and keyed literals on persisted wire structs",
	Run:  runWirecompat,
}

// runWirecompat checks marker integrity for structs declared in this
// package and literal keyedness for wire structs used anywhere in it.
func runWirecompat(pass *Pass) {
	// Marker integrity: only for types declared here (their marker
	// comment lives in this package's files).
	for tn, ws := range pass.Index.Wire {
		if tn.Pkg() == nil || tn.Pkg().Path() != pass.Pkg.Path {
			continue
		}
		switch {
		case ws.NonStruct:
			pass.Reportf(ws.NamePos, "tplvet:wire marks %s, which is not a struct", tn.Name())
		case ws.RecordedSchema == "":
			pass.Reportf(ws.NamePos, "wire struct %s (%s) has no schema checksum; record the current field set with `schema=%s`", tn.Name(), ws.Version, ws.ActualSchema)
		case ws.RecordedSchema != ws.ActualSchema:
			pass.Reportf(ws.NamePos, "wire struct %s: field set changed (schema is now %s, marker records %s) — if the persisted encoding changed, bump %s and teach the decoder; then update schema=", tn.Name(), ws.ActualSchema, ws.RecordedSchema, ws.Version)
		}
	}
	// Keyedness: every composite literal of a wire struct, wherever the
	// struct was declared.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.TypeOf(lit)
			if t == nil {
				return true
			}
			named, ok := derefNamed(t)
			if !ok {
				return true
			}
			ws, isWire := pass.Index.Wire[named.Obj()]
			if !isWire || ws.NonStruct || len(lit.Elts) == 0 {
				return true
			}
			for _, elt := range lit.Elts {
				if _, keyed := elt.(*ast.KeyValueExpr); !keyed {
					pass.Reportf(lit.Pos(), "unkeyed composite literal of wire struct %s (%s): a field addition would silently shift every later value; use keyed fields", named.Obj().Name(), ws.Version)
					break
				}
			}
			return true
		})
	}
}

// derefNamed unwraps pointers and aliases to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}
