package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package loading without golang.org/x/tools: `go list -export` hands
// back, for every dependency, the path of its export data in the build
// cache; the target packages themselves are parsed and typechecked from
// source with go/types, resolving imports through go/importer's gc
// reader pointed at those files. This is the same split a vet unit
// checker uses, driven here directly so the tool stays dependency-free
// and works offline.

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over the patterns.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to build-cache export data.
type exportImporter struct {
	exports map[string]string // import path -> export file
	imp     types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	ei.imp = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.imp.ImportFrom(path, "", 0)
}

// Load lists, parses and typechecks the packages matching patterns,
// with dir as the working directory (the module root for `./...`).
// Test files are not loaded: the invariants under analysis are
// production invariants, and fixtures deliberately violating them must
// not fail the tree they test.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and typechecks one package from source.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", path, err)
	}
	return &Package{
		Path:   path,
		Name:   tpkg.Name(),
		Dir:    dir,
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		allows: parseAllows(fset, files),
	}, nil
}
