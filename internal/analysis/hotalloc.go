package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotalloc: functions marked `//tplvet:hotpath` are the v2 ingest
// pipeline — NDJSON decode, CollectBatch, response encode, journal
// append — whose ~1 alloc/step steady state (PR 6's arena pooling) is
// a benchmarked, perf-gated property. The constructs that silently
// regress it:
//
//   - fmt formatting (reflection + per-verb allocation);
//   - boxing a concrete value into an interface parameter (every
//     non-pointer-shaped value converted to interface heap-allocates);
//   - closures that capture outer variables and escape (the captured
//     variables move to the heap for the life of the closure; deferred
//     and immediately-invoked closures stay on the stack and pass);
//   - append to a slice that starts empty (guaranteed geometric
//     regrowth; the arena slabs and pre-sized makes exist precisely to
//     avoid it).
//
// Constructing an error to return is exempt: a rejected request is the
// cold path, and the batch contract means nothing was charged before
// the rejection. The exemption is syntactic — the allocation must
// appear inside a return statement.

// Hotalloc is the analyzer instance.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation sources in //tplvet:hotpath functions",
	Run:  runHotalloc,
}

const hotpathMarker = "tplvet:hotpath"

// hasHotpathMarker reports whether a doc comment carries the marker.
func hasHotpathMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == hotpathMarker {
			return true
		}
	}
	return false
}

// runHotalloc is the per-package entry point.
func runHotalloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathMarker(fd.Doc) {
				continue
			}
			checkHotalloc(pass, fd)
		}
	}
}

// checkHotalloc scans one annotated function.
func checkHotalloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	emptySlices := emptySliceLocals(info, fd.Body)
	returns := returnSpans(fd.Body)
	exempt := func(n ast.Node) bool {
		for _, span := range returns {
			if n.Pos() >= span[0] && n.End() <= span[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, st)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				if !exempt(st) {
					pass.Reportf(st.Pos(), "fmt.%s on hotpath %s: formatting reflects and allocates per call; use strconv appends or a preallocated error", fn.Name(), fd.Name.Name)
				}
				return true // don't double-report its boxed arguments
			}
			if !exempt(st) {
				checkBoxing(pass, fd, st)
			}
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					checkAppend(pass, fd, st, emptySlices)
				}
			}
		case *ast.FuncLit:
			checkClosure(pass, fd, st)
			return false // the closure body is its own (non-hotpath) world
		}
		return true
	})
}

// returnSpans collects the source spans of return statements — the
// error-construction exemption.
func returnSpans(body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			spans = append(spans, [2]token.Pos{ret.Pos(), ret.End()})
		}
		return true
	})
	return spans
}

// boxes reports whether converting from concrete type t to an
// interface heap-allocates: every non-interface, non-pointer-shaped
// value does (pointers, maps, channels and funcs are one word and ride
// in the interface data word; nil is nil).
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	default:
		return true
	}
}

// checkBoxing flags concrete values passed to interface parameters.
func checkBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	sigT := pass.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			paramT = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramT = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := paramT.Underlying().(*types.Interface); !isIface {
			continue
		}
		argT := pass.TypeOf(arg)
		if boxes(argT) {
			pass.Reportf(arg.Pos(), "value of type %s boxed into interface parameter on hotpath %s: the conversion heap-allocates per call", types.TypeString(argT, types.RelativeTo(pass.Pkg.Types)), fd.Name.Name)
		}
	}
}

// checkClosure flags escaping capturing closures. A FuncLit escapes
// when it is not immediately invoked and not a defer argument: passed
// to a call, assigned, returned, or launched with go.
func checkClosure(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	ctx := enclosing(fd.Body, lit)
	switch parent := ctx.(type) {
	case *ast.CallExpr:
		if parent.Fun == lit {
			return // immediately invoked: func(){...}()
		}
	case *ast.DeferStmt:
		if parent.Call.Fun == lit {
			return // deferred closures stay on the stack
		}
	}
	captured := capturedVars(pass.Pkg.Info, lit)
	if len(captured) == 0 {
		return // capture-free closures are a static allocation
	}
	pass.Reportf(lit.Pos(), "closure on hotpath %s captures %s and escapes: the captures move to the heap per call", fd.Name.Name, strings.Join(captured, ", "))
}

// enclosing finds the immediate interesting ancestor of lit.
func enclosing(body *ast.BlockStmt, lit *ast.FuncLit) ast.Node {
	var parent ast.Node
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == lit && len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parent
}

// capturedVars lists outer variables referenced inside lit.
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		// Declared outside the literal = captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			if !seen[v.Name()] {
				seen[v.Name()] = true
				names = append(names, v.Name())
			}
		}
		return true
	})
	return names
}

// emptySliceLocals finds local slice variables that start with no
// capacity: `var x []T`, `x := []T{}`, `x := make([]T, 0)`.
func emptySliceLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				out[obj] = true
			}
		}
	}
	startsEmpty := func(rhs ast.Expr) bool {
		switch e := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			return len(e.Elts) == 0
		case *ast.CallExpr:
			id, ok := e.Fun.(*ast.Ident)
			if !ok || id.Name != "make" {
				return false
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return false
			}
			// make([]T, 0) or make([]T, 0, 0): only a literal zero
			// length/capacity counts — a computed size is a pre-size.
			for _, arg := range e.Args[1:] {
				lit, ok := ast.Unparen(arg).(*ast.BasicLit)
				if !ok || lit.Value != "0" {
					return false
				}
			}
			return len(e.Args) >= 2
		default:
			return false
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i := range st.Lhs {
				if id, ok := st.Lhs[i].(*ast.Ident); ok && startsEmpty(st.Rhs[i]) {
					mark(id)
				}
			}
		case *ast.ValueSpec:
			if len(st.Values) == 0 {
				for _, id := range st.Names {
					mark(id) // var x []T — nil, zero capacity
				}
				return true
			}
			if len(st.Values) == len(st.Names) {
				for i, id := range st.Names {
					if startsEmpty(st.Values[i]) {
						mark(id)
					}
				}
			}
		}
		return true
	})
	return out
}

// checkAppend flags appends whose base slice provably starts empty.
func checkAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, empty map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	base := ast.Unparen(call.Args[0])
	// Unwrap reslices: append(x[:0], ...) grows x's backing array.
	for {
		if sl, ok := base.(*ast.SliceExpr); ok {
			base = ast.Unparen(sl.X)
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil {
		obj = pass.Pkg.Info.Defs[id]
	}
	if obj == nil || !empty[obj] {
		return
	}
	pass.Reportf(call.Pos(), "append to %s, which starts empty, on hotpath %s: guaranteed geometric regrowth; carve from an arena slab or pre-size with make", id.Name, fd.Name.Name)
}
