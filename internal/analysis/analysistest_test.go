package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture harness in the analysistest style: packages under
// testdata/src/<name> carry `// want "regexp"` comments on the lines
// where a finding must appear; the runner loads the fixture, runs the
// chosen analyzers, and diffs findings against expectations both ways.
//
// The fixture is typechecked under a caller-chosen import path (asPath)
// rather than its real testdata path, because locksafe and determinism
// scope by package path — a fixture checked as
// "repro/internal/stream/fixture" exercises the in-scope behavior, the
// same files checked as "repro/tools/fixture" prove the scope gate.

// loadFixture typechecks testdata/src/<name> as if it were asPath.
func loadFixture(t *testing.T, name, asPath string) *Package {
	t.Helper()
	rel := "./" + filepath.ToSlash(filepath.Join("testdata", "src", name))
	listed, err := goList(".", []string{rel})
	if err != nil {
		t.Fatalf("listing fixture %s: %v", name, err)
	}
	exports := make(map[string]string, len(listed))
	var target *listPackage
	for i, p := range listed {
		if p.Error != nil {
			t.Fatalf("go list %s: %s: %s", name, p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			target = &listed[i]
		}
	}
	if target == nil {
		t.Fatalf("fixture %s: no target package listed", name)
	}
	fset := token.NewFileSet()
	pkg, err := typecheck(fset, newExportImporter(fset, exports), asPath, target.Dir, target.GoFiles)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", name, err)
	}
	return pkg
}

// wantRe extracts the quoted expectations from a `// want` comment.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// wantQuoted pulls each backquoted or double-quoted pattern in order.
var wantQuoted = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// parseWants scans the fixture sources for expectations.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantQuoted.FindAllStringSubmatch(m[1], -1) {
					pat := q[1]
					if pat == "" {
						pat = strings.ReplaceAll(q[2], `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// runFixture asserts that the analyzers' findings on the fixture match
// its want comments exactly.
func runFixture(t *testing.T, name, asPath string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name, asPath)
	wants := parseWants(t, pkg)
	diags := Run([]*Package{pkg}, analyzers)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// expectClean asserts the analyzers produce nothing on the fixture,
// ignoring its want comments (used to prove scope gates and allow
// suppression on fixtures that are violating by construction).
func expectClean(t *testing.T, name, asPath string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name, asPath)
	for _, d := range Run([]*Package{pkg}, analyzers) {
		t.Errorf("expected no findings, got: %s", d)
	}
}
