package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// determinism: the replay/wire path must be a pure function of its
// inputs. Every bit-identical guarantee the test suite enforces —
// kill-and-recover equality, journal-replay equality, content-hash
// stable engine compiles, v1/v2 parity — reduces to three mechanical
// rules on the code that produces persisted or hashed bytes:
//
//  1. no iteration over a map in an order-sensitive position (Go
//     randomizes range order per execution);
//  2. no time.Now/Since/Until and no global math/rand source (seeded
//     *rand.Rand values threaded through the noise seam are fine —
//     their state is part of the snapshot);
//  3. no floating-point accumulation in map-iteration order (float
//     addition does not commute in rounding).
//
// Scope: all of internal/persist, internal/chunked and internal/report
// (the wire formats themselves), plus functions in internal/core and
// internal/stream whose names say they are on the snapshot/replay path
// (Snapshot, Restore, Marshal, Encode, ApplyStep, fingerprints and
// hashes).
//
// A map range whose body is provably order-insensitive — it only
// collects keys/values for later sorting, fills another map, deletes,
// or counts with integers — is not flagged: collect-then-sort is the
// idiomatic fix, and flagging it would teach people to ignore the
// analyzer.

// Determinism is the analyzer instance.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags nondeterminism (map order, clocks, global rand) on the replay/wire path",
	Run:  runDeterminism,
}

// determinismWholePkgs are fully in-scope packages.
var determinismWholePkgs = []string{"internal/persist", "internal/chunked", "internal/report"}

// determinismFuncRe scopes core/stream to their wire-path functions.
var determinismFuncRe = regexp.MustCompile(`(?i)snapshot|restore|marshal|unmarshal|encode|decode|wire|applystep|fingerprint|contenthash|replay`)

// determinismFuncPkgs are packages scoped by function name.
var determinismFuncPkgs = []string{"internal/core", "internal/stream"}

// nondetCalls are the clock and global-randomness entry points.
var nondetCalls = map[string]string{
	"time.Now":   "wall-clock reads differ between original run and replay",
	"time.Since": "wall-clock reads differ between original run and replay",
	"time.Until": "wall-clock reads differ between original run and replay",
}

func pathMatchesAny(path string, frags []string) bool {
	for _, f := range frags {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}

// runDeterminism is the per-package entry point.
func runDeterminism(pass *Pass) {
	whole := pathMatchesAny(pass.Pkg.Path, determinismWholePkgs)
	byName := pathMatchesAny(pass.Pkg.Path, determinismFuncPkgs)
	if !whole && !byName {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !whole && !determinismFuncRe.MatchString(fd.Name.Name) {
				continue
			}
			checkDeterminism(pass, fd)
		}
	}
}

// checkDeterminism scans one scoped function (closures included — they
// run on the same path).
func checkDeterminism(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypeOf(st.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if benignMapRange(info, st) {
				return true
			}
			if floatAccumulation(info, st.Body) {
				pass.Reportf(st.Pos(), "float accumulation over map iteration order in %s: FP addition does not commute in rounding, so replays diverge bit-by-bit; iterate sorted keys", fd.Name.Name)
			} else {
				pass.Reportf(st.Pos(), "map iteration order is randomized; %s is on the replay/wire path — sort the keys before iterating", fd.Name.Name)
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, st)
			if fn == nil {
				return true
			}
			name := fn.FullName()
			if why, ok := nondetCalls[name]; ok {
				pass.Reportf(st.Pos(), "%s in %s: %s", name, fd.Name.Name, why)
				return true
			}
			// Package-level math/rand functions draw from the process
			// global source; seeded *rand.Rand methods are deterministic
			// state machines and pass.
			if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "math/rand" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					pass.Reportf(st.Pos(), "math/rand.%s uses the global source in %s: replays cannot reproduce the draw; thread a seeded *rand.Rand through the noise seam", fn.Name(), fd.Name.Name)
				}
			}
		}
		return true
	})
}

// benignMapRange reports whether every statement of a map-range body is
// order-insensitive: appending the key/value for later sorting, filling
// a map or set, deleting, or integer counting.
func benignMapRange(info *types.Info, st *ast.RangeStmt) bool {
	for _, stmt := range st.Body.List {
		if !benignStmt(info, stmt) {
			return false
		}
	}
	return true
}

// benignStmt classifies one statement as order-insensitive.
func benignStmt(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return false
		}
		for i := range s.Lhs {
			if !benignAssign(info, s.Lhs[i], s.Rhs[i], s.Tok.String()) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		return true // x++ / x-- commute
	case *ast.ExprStmt:
		// delete(m, k) is order-insensitive.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && info.Uses[id] == nil {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "delete" {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}

// benignAssign classifies one assignment inside a map range.
func benignAssign(info *types.Info, lhs, rhs ast.Expr, tok string) bool {
	switch tok {
	case "=", ":=":
		// m[k] = v — filling a map is order-insensitive.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if t := info.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return true
				}
			}
			return false
		}
		// xs = append(xs, ...) — collect-then-sort.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
					return true
				}
			}
		}
		return false
	case "+=", "-=", "|=", "&=", "^=":
		// Integer accumulation commutes; float does not.
		if t := info.TypeOf(lhs); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// floatAccumulation reports whether the body compound-assigns into a
// float in iteration order.
func floatAccumulation(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok.String() != "+=" && as.Tok.String() != "*=" && as.Tok.String() != "-=") {
			return true
		}
		for _, lhs := range as.Lhs {
			if t := info.TypeOf(lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					found = true
				}
			}
		}
		return true
	})
	return found
}
