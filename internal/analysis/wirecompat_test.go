package analysis

import "testing"

func TestWirecompatFindings(t *testing.T) {
	// wirecompat is not path-scoped: wire structs carry their own marker.
	runFixture(t, "wirecompat", "repro/tools/fixture", []*Analyzer{Wirecompat})
}
