package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The suppression escape hatch. A finding is intentional when the line
// carrying it (or the line above) has
//
//	//tplvet:allow <analyzer> <reason>
//
// The reason is not decoration: an allow with no reason, or one naming
// an analyzer that does not exist, is itself reported — the whole point
// of mechanical invariants is that every exception is written down.

const allowPrefix = "tplvet:allow"

// allowEntry is one parsed allow comment.
type allowEntry struct {
	analyzer string
	reason   string
	pos      token.Position
}

// allowIndex maps file -> line -> allows ending or starting there.
type allowIndex map[string]map[int][]allowEntry

// covers reports whether an allow for analyzer exists on line or the
// line directly above it in file.
func (ai allowIndex) covers(analyzer, file string, line int) bool {
	lines := ai[file]
	for _, l := range [2]int{line, line - 1} {
		for _, e := range lines[l] {
			if e.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// parseAllows builds the index for one file's comments.
func parseAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				analyzer, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				e := allowEntry{analyzer: analyzer, reason: strings.TrimSpace(reason), pos: pos}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]allowEntry)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], e)
			}
		}
	}
	return idx
}

// checkAllowHygiene reports malformed allows: missing analyzer name,
// missing reason, or an analyzer the suite does not know (a typo there
// would silently suppress nothing — or the wrong thing — forever).
func checkAllowHygiene(pkg *Package, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	bad := func(e allowEntry, msg string) {
		diags = append(diags, Diagnostic{Analyzer: "allow", Pos: e.pos, Message: msg})
	}
	for _, lines := range pkg.allows {
		for _, entries := range lines {
			for _, e := range entries {
				switch {
				case e.analyzer == "":
					bad(e, "tplvet:allow needs an analyzer name and a reason")
				case !known[e.analyzer]:
					bad(e, fmt.Sprintf("tplvet:allow names unknown analyzer %q", e.analyzer))
				case e.reason == "":
					bad(e, "tplvet:allow "+e.analyzer+" needs a written reason")
				}
			}
		}
	}
	return diags
}
