package analysis

import "testing"

// TestRepoCorpusClean runs the full suite over the real repository —
// the no-false-positive corpus. Every idiom the production code uses
// (collect-then-sort over maps, arena reslicing, closures under locks
// that run after release) must pass without a finding; every
// intentional exception must already carry a reasoned allow. This is
// the same bar CI enforces with `go run ./cmd/tplvet ./...`.
func TestRepoCorpusClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repository")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d); the corpus test is not covering the tree", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("unexpected finding on clean tree: %s", d)
	}
}
