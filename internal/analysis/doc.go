// Package analysis is tplvet's analyzer suite: repo-specific static
// checks that turn the system's correctness invariants — deterministic
// wire encoding, no I/O under accounting locks, versioned persist
// schemas, alloc-free ingest — from differential-test tribal knowledge
// into machine-checked lints that fail CI at review time.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) but is self-contained on the standard
// library: packages are loaded with `go list -export -deps -json` and
// typechecked against the build cache's export data via go/importer, so
// the tool needs no module dependency and runs offline. See cmd/tplvet
// for the driver.
//
// Four analyzers ship today:
//
//   - locksafe: blocking calls (file/network I/O, fsync, time.Sleep,
//     sends on unbuffered channels, anything reaching the persist or
//     enginecache layers) made while a sync.Mutex/RWMutex of the
//     accounting packages (internal/stream, internal/service,
//     internal/persist) is held. The PR-4 healthz-behind-fsync stall is
//     the bug class this catches.
//   - determinism: on the replay/wire path (internal/persist,
//     internal/chunked, internal/report, and snapshot/restore/encode
//     functions in internal/core and internal/stream), unsorted map
//     iteration, time.Now / global math/rand use, and float
//     accumulation in map-iteration order — the invariants behind every
//     bit-identical differential test.
//   - wirecompat: structs marked `//tplvet:wire vN schema=HASH` must
//     keep their recorded field-set hash (any field change forces the
//     marker line — and therefore a reviewed version decision — to
//     change in the same diff), and composite literals of wire structs
//     must use keyed fields so a field addition cannot silently shift
//     encoded values.
//   - hotalloc: functions marked `//tplvet:hotpath` (the v2 NDJSON
//     decode → CollectBatch → journal pipeline) must not defeat the
//     arena pooling: no fmt formatting, no interface-boxing of step
//     values, no escaping closures, no append to a slice that starts
//     empty. Error-return construction is exempt — rejections are the
//     cold path.
//
// Suppression: a finding is silenced by a comment on the same line or
// the line above it:
//
//	//tplvet:allow <analyzer> <reason>
//
// The reason is mandatory; a bare allow is itself a finding. locksafe
// additionally honors allows placed on the Lock() call or on the mutex
// field declaration (for mutexes that order I/O by design, like the
// session step lock).
package analysis
