package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a single package and
// reports findings through the pass; the driver handles suppression,
// ordering and exit codes.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Package is one loaded, typechecked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allows allowIndex
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Index holds cross-package facts (the wire-struct table) built over
	// every package of the run before any analyzer executes.
	Index *Index

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow comment for this
// analyzer covers the position (same line or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{Analyzer: p.Analyzer.Name, Pos: position, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether a `//tplvet:allow <analyzer> <reason>`
// comment covers pos for this analyzer. Analyzers use it directly to
// honor allows at secondary positions (locksafe checks the Lock call
// and the mutex declaration, not just the blocking call).
func (p *Pass) Allowed(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	position := p.Pkg.Fset.Position(pos)
	return p.Pkg.allows.covers(p.Analyzer.Name, position.Filename, position.Line)
}

// TypeOf is a nil-tolerant p.Pkg.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function, method, or interface method), or nil for builtins,
// conversions and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Run executes the analyzers over the packages, filters suppressed
// findings, appends the allow-hygiene meta findings, and returns
// everything sorted by position. This is the whole driver: cmd/tplvet
// prints the result, tests assert on it.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	idx := BuildIndex(pkgs)
	var diags []Diagnostic
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Index: idx, diags: &diags}
			a.Run(pass)
		}
		diags = append(diags, checkAllowHygiene(pkg, known)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{Locksafe, Determinism, Wirecompat, Hotalloc}
}
