// Package wirecompatfix exercises the wirecompat analyzer: marker
// integrity (missing checksum, stale checksum, marker on a non-struct)
// and literal keyedness.
package wirecompatfix

// GoodRec's marker records the current field set.
//
//tplvet:wire v1 schema=4ca07ffc3e6f
type GoodRec struct {
	T   int
	Eps float64
}

// FreshRec was just marked; the checksum is not recorded yet.
//
//tplvet:wire v1
type FreshRec struct { // want `has no schema checksum; record the current field set with .schema=5f15b8412177.`
	A uint64
	B string
}

// StaleRec's marker predates a field change.
//
//tplvet:wire v1 schema=deadbeef0000
type StaleRec struct { // want `field set changed \(schema is now 5f15b8412177, marker records deadbeef0000\)`
	A uint64
	B string
}

// NotAStruct misuses the marker.
//
//tplvet:wire v3
type NotAStruct int // want `tplvet:wire marks NotAStruct, which is not a struct`

func build(t int, eps float64) GoodRec {
	return GoodRec{t, eps} // want `unkeyed composite literal of wire struct GoodRec`
}

func buildKeyed(t int, eps float64) GoodRec {
	return GoodRec{T: t, Eps: eps}
}

func buildZero() GoodRec {
	return GoodRec{}
}
