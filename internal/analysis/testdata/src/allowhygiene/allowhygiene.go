// Package allowhygienefix carries the three malformed allow shapes:
// no analyzer name, an unknown analyzer, and a missing reason. The
// runner asserts each is reported (and that the reason-less allow
// still suppresses nothing it shouldn't).
package allowhygienefix

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump() {
	//tplvet:allow
	g.mu.Lock()
	g.n++
	//tplvet:allow nosuchanalyzer because reasons
	g.mu.Unlock()
}

func (g *guarded) read() int {
	//tplvet:allow locksafe
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
