// Package locksafefix exercises the locksafe analyzer: each flagged
// line carries a want comment; unflagged lines are the negative corpus
// (blocking after unlock, buffered sends, select-with-default,
// closures built under a lock).
package locksafefix

import (
	"net/http"
	"os"
	"sync"
	"time"
)

type store struct {
	mu  sync.Mutex
	rmu sync.RWMutex
}

func (s *store) deferHeld() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile("x", nil, 0o644) // want `\[locksafe\] blocking call while holding the write lock of s\.mu .*os\.WriteFile blocks`
}

func (s *store) explicitRegion() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks`
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // after the unlock: fine
}

func (s *store) transitive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.helperIO() // want `helperIO calls os\.ReadFile blocks`
}

func (s *store) helperIO() {
	_, _ = os.ReadFile("x")
}

func (s *store) readHeld() {
	s.rmu.RLock()
	defer s.rmu.RUnlock()
	time.Sleep(time.Millisecond) // want `while holding the read lock of s\.rmu`
}

func (s *store) httpHeld(c *http.Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = c.Get("http://example.invalid") // want `reaches the net/http layer`
}

func (s *store) channels() {
	ch := make(chan int)
	buf := make(chan int, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1 // want `channel send may block .*unbuffered channel ch`
	buf <- 2
	select {
	case ch <- 3:
	default:
	}
}

func (s *store) closureBuiltUnderLock() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := func() {
		_, _ = os.ReadFile("x") // runs after release: a separate unit
	}
	return f
}

func (s *store) blockingWithoutLock() {
	time.Sleep(time.Millisecond)
	_, _ = os.ReadFile("x")
}
