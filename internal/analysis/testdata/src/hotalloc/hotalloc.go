// Package hotallocfix exercises the hotalloc analyzer: fmt calls,
// interface boxing, escaping closures and empty-slice appends inside
// //tplvet:hotpath functions, with the return-statement exemption and
// the unannotated-function negative case.
package hotallocfix

import (
	"fmt"
	"strconv"
)

func sink(v any) { _ = v }

func takeFunc(f func()) { f() }

//tplvet:hotpath
func sprintfHot(n int) string {
	s := fmt.Sprintf("%d", n) // want `fmt\.Sprintf on hotpath sprintfHot`
	return s
}

//tplvet:hotpath
func errReturn(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative: %d", n) // error construction in a return: exempt
	}
	return n, nil
}

//tplvet:hotpath
func boxing(n int, p *int) {
	sink(n) // want `value of type int boxed into interface parameter`
	sink(p)
}

//tplvet:hotpath
func closures(xs []int) int {
	total := 0
	takeFunc(func() { total += len(xs) }) // want `closure on hotpath closures captures total, xs and escapes`
	func() { total++ }()
	defer func() { total = 0 }()
	return total
}

//tplvet:hotpath
func appendEmpty(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append to out, which starts empty`
	}
	return out
}

//tplvet:hotpath
func appendSized(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//tplvet:hotpath
func appendReslice(buf []int, n int) []int {
	scratch := []int{}
	scratch = append(scratch[:0], n) // want `append to scratch, which starts empty`
	return append(buf[:0], scratch...)
}

//tplvet:hotpath
func hotClean(b []byte, n int) []byte {
	return strconv.AppendInt(b, int64(n), 10)
}

// coldSprintf has no marker: hotalloc ignores it entirely.
func coldSprintf(n int) string {
	s := fmt.Sprintf("%d", n)
	return s
}
