// Package determinismscopefix proves the function-name scoping: in
// internal/core and internal/stream only snapshot/replay-named
// functions are on the wire path.
package determinismscopefix

import "time"

// SnapshotClock is in scope by name.
func SnapshotClock() int64 {
	return time.Now().UnixNano() // want `time\.Now`
}

// serveClock is the live path; clocks are fine here.
func serveClock() int64 {
	return time.Now().UnixNano()
}
