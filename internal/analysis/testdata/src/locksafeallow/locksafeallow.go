// Package locksafeallowfix proves every allow placement the locksafe
// analyzer honors: the blocking call line, the Lock() line, and the
// mutex field declaration. The runner asserts zero findings.
package locksafeallowfix

import (
	"os"
	"sync"
)

type store struct {
	// declMu orders I/O by contract, like the service step lock.
	//
	//tplvet:allow locksafe fixture: declaration-site allow covering every region of this mutex
	declMu sync.Mutex
	mu     sync.Mutex
	mu2    sync.Mutex
}

func (s *store) declAllowed() {
	s.declMu.Lock()
	defer s.declMu.Unlock()
	_, _ = os.ReadFile("x")
}

func (s *store) lockLineAllowed() {
	//tplvet:allow locksafe fixture: the probe below runs once per boot
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = os.ReadFile("x")
}

func (s *store) callLineAllowed() {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	_, _ = os.ReadFile("x") //tplvet:allow locksafe fixture: this read is served from a ramdisk
}
