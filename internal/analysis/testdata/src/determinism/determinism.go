// Package determinismfix exercises the determinism analyzer under an
// in-scope package path. The unflagged functions are the idiomatic
// deterministic forms: collect-then-sort, map fills, deletes, integer
// counting, seeded rand.
package determinismfix

import (
	"math/rand"
	"sort"
	"time"
)

func encodeOrder(m map[string]float64, w func(string, float64)) {
	for k, v := range m { // want `map iteration order is randomized`
		w(k, v)
	}
}

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `float accumulation over map iteration order`
		total += v
	}
	return total
}

func collectSorted(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fill(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func countInts(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now`
}

func globalDraw() float64 {
	return rand.Float64() // want `math/rand\.Float64 uses the global source`
}

func seededDraw(r *rand.Rand) float64 {
	return r.Float64()
}
