package lfp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDinkelbachKnownOptimum(t *testing.T) {
	p := &Problem{Q: []float64{1, 0}, D: []float64{0, 1}, Alpha: 0.5}
	r, err := p.SolveDinkelbach()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-math.Exp(0.5)) > 1e-9 {
		t.Errorf("ratio = %v, want e^0.5", r)
	}
}

func TestDinkelbachEqualRows(t *testing.T) {
	q := []float64{0.3, 0.7}
	p := &Problem{Q: q, D: q, Alpha: 2}
	r, err := p.SolveDinkelbach()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-9 {
		t.Errorf("ratio = %v, want 1", r)
	}
}

func TestDinkelbachMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(9)
		alpha := []float64{0.01, 0.1, 0.5, 1, 3, 8, 15}[rng.Intn(7)]
		p := &Problem{
			Q:     randomStochasticRow(rng, n),
			D:     randomStochasticRow(rng, n),
			Alpha: alpha,
		}
		bf, _, err := p.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		dk, err := p.SolveDinkelbach()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(bf-dk) > 1e-9*(1+bf) {
			t.Errorf("trial %d (n=%d alpha=%v): brute %v vs Dinkelbach %v", trial, n, alpha, bf, dk)
		}
	}
}

func TestDinkelbachMatchesSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		p := &Problem{
			Q:     randomStochasticRow(rng, n),
			D:     randomStochasticRow(rng, n),
			Alpha: 0.1 + rng.Float64()*2,
		}
		lp, err := p.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		dk, err := p.SolveDinkelbach()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lp-dk) > 1e-6*(1+lp) {
			t.Errorf("trial %d: simplex %v vs Dinkelbach %v", trial, lp, dk)
		}
	}
}

func TestDinkelbachSparseRows(t *testing.T) {
	// Zero denominators in some coordinates (d_i = 0 with q_i > 0)
	// push those coordinates high regardless of lambda.
	p := &Problem{Q: []float64{0.5, 0.5}, D: []float64{0, 1}, Alpha: 1}
	dk, err := p.SolveDinkelbach()
	if err != nil {
		t.Fatal(err)
	}
	bf, _, err := p.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dk-bf) > 1e-9 {
		t.Errorf("Dinkelbach %v vs brute %v", dk, bf)
	}
}

func TestDinkelbachValidation(t *testing.T) {
	p := &Problem{Q: []float64{1}, D: []float64{1, 0}, Alpha: 1}
	if _, err := p.SolveDinkelbach(); err == nil {
		t.Error("dimension mismatch should fail")
	}
	zeroD := &Problem{Q: []float64{1, 0}, D: []float64{0, 0}, Alpha: 1}
	if _, err := zeroD.SolveDinkelbach(); err == nil {
		t.Error("zero-mass denominator should fail")
	}
}

func TestLogDinkelbach(t *testing.T) {
	p := &Problem{Q: []float64{1, 0}, D: []float64{0, 1}, Alpha: 0.7}
	lg, err := p.LogDinkelbach()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lg-0.7) > 1e-9 {
		t.Errorf("log = %v, want 0.7", lg)
	}
}

func TestDinkelbachMonotoneLambdaSequence(t *testing.T) {
	// The Dinkelbach iterates are non-decreasing; the final answer is at
	// least the all-low vertex ratio 1 (stochastic rows).
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		p := &Problem{
			Q:     randomStochasticRow(rng, n),
			D:     randomStochasticRow(rng, n),
			Alpha: rng.Float64() * 5,
		}
		r, err := p.SolveDinkelbach()
		if err != nil {
			t.Fatal(err)
		}
		if r < 1-1e-9 {
			t.Errorf("ratio %v below 1", r)
		}
	}
}
