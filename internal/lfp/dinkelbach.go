package lfp

import (
	"errors"
	"fmt"
	"math"
)

// This file implements Dinkelbach's parametric algorithm for the leakage
// LFP — the very machinery the paper's Appendix A uses to prove
// Theorem 4 (Dinkelbach's Theorem + Lemma 3). It gives the reproduction
// a third independent solver route to cross-check Algorithm 1 and the
// simplex path.
//
// Key simplification: the pairwise constraints x_j <= e^alpha * x_k for
// all (j, k), together with scale invariance of the objective, are
// equivalent to optimizing over the box [1, e^alpha]^n (scale any
// feasible ray so its minimum coordinate is 1; conversely every box
// point satisfies all pairwise constraints). Over a box, Dinkelbach's
// parametric subproblem
//
//	F(lambda) = max_x { Q(x) - lambda * D(x) }
//
// separates per coordinate and is solved in closed form (Lemma 3: each
// coordinate goes to the high end iff its net coefficient is positive),
// so each iteration is O(n) with no LP solve.

// ErrNoConvergence is returned when Dinkelbach iteration fails to reach
// the fixed point within its iteration budget (it converges
// superlinearly, so hitting this indicates a malformed instance).
var ErrNoConvergence = errors.New("lfp: Dinkelbach iteration did not converge")

// SolveDinkelbach maximizes the ratio by Dinkelbach's algorithm and
// returns the optimal ratio (not its logarithm).
func (p *Problem) SolveDinkelbach() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n := len(p.Q)
	e := math.Exp(p.Alpha)
	sumD := 0.0
	for _, d := range p.D {
		sumD += d
	}
	if sumD <= 0 {
		return 0, fmt.Errorf("lfp: denominator row has no mass; ratio unbounded")
	}

	// Evaluate Q and D at the box vertex induced by lambda: coordinate i
	// sits at e iff q_i - lambda*d_i > 0, else at 1.
	vertex := func(lambda float64) (qv, dv float64) {
		for i := 0; i < n; i++ {
			x := 1.0
			if p.Q[i]-lambda*p.D[i] > 0 {
				x = e
			}
			qv += p.Q[i] * x
			dv += p.D[i] * x
		}
		return qv, dv
	}

	// Start from the all-low vertex ratio.
	sumQ := 0.0
	for _, q := range p.Q {
		sumQ += q
	}
	lambda := sumQ / sumD
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		qv, dv := vertex(lambda)
		f := qv - lambda*dv
		if f <= 1e-12*(1+math.Abs(lambda)*dv) {
			// F(lambda) = 0: lambda is the optimal ratio.
			return lambda, nil
		}
		next := qv / dv
		if next <= lambda {
			// Numerical stall: treat as converged.
			return lambda, nil
		}
		lambda = next
	}
	return 0, ErrNoConvergence
}

// LogDinkelbach returns log of the Dinkelbach optimum: the leakage
// increment for the row pair.
func (p *Problem) LogDinkelbach() (float64, error) {
	r, err := p.SolveDinkelbach()
	if err != nil {
		return 0, err
	}
	return math.Log(r), nil
}
