package lfp

import (
	"math"
	"math/rand"
	"testing"
)

func randomStochasticRow(rng *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	s := 0.0
	for i := range row {
		row[i] = rng.Float64()
		s += row[i]
	}
	for i := range row {
		row[i] /= s
	}
	return row
}

func TestValidate(t *testing.T) {
	ok := &Problem{Q: []float64{0.5, 0.5}, D: []float64{0.2, 0.8}, Alpha: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	cases := []*Problem{
		{Q: nil, D: nil, Alpha: 1},
		{Q: []float64{1}, D: []float64{0.5, 0.5}, Alpha: 1},
		{Q: []float64{1}, D: []float64{1}, Alpha: -1},
		{Q: []float64{1}, D: []float64{1}, Alpha: math.NaN()},
		{Q: []float64{-0.5, 1.5}, D: []float64{0.5, 0.5}, Alpha: 1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

func TestBruteForceKnownOptimum(t *testing.T) {
	// q=(1,0), d=(0,1), alpha: pick S={0}: ratio = e^alpha.
	p := &Problem{Q: []float64{1, 0}, D: []float64{0, 1}, Alpha: 0.5}
	r, mask, err := p.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-math.Exp(0.5)) > 1e-12 {
		t.Errorf("ratio = %v, want e^0.5", r)
	}
	if mask != 1 {
		t.Errorf("mask = %b, want 1", mask)
	}
}

func TestBruteForceEqualRowsGiveOne(t *testing.T) {
	q := []float64{0.3, 0.7}
	p := &Problem{Q: q, D: q, Alpha: 2}
	r, _, err := p.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("ratio = %v, want 1", r)
	}
}

func TestBruteForceAlphaZero(t *testing.T) {
	p := &Problem{Q: []float64{1, 0}, D: []float64{0, 1}, Alpha: 0}
	r, _, err := p.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("alpha=0 ratio = %v, want 1", r)
	}
}

func TestBruteForceLimit(t *testing.T) {
	q := make([]float64, BruteForceLimit+1)
	d := make([]float64, BruteForceLimit+1)
	for i := range q {
		q[i] = 1.0 / float64(len(q))
		d[i] = q[i]
	}
	p := &Problem{Q: q, D: d, Alpha: 1}
	if _, _, err := p.BruteForce(); err == nil {
		t.Error("dimension above limit should fail")
	}
}

func TestToLPShape(t *testing.T) {
	p := &Problem{Q: []float64{0.5, 0.5}, D: []float64{0.2, 0.8}, Alpha: 1}
	lp, err := p.ToLP()
	if err != nil {
		t.Fatal(err)
	}
	if lp.NumVars != 2 {
		t.Errorf("NumVars = %d", lp.NumVars)
	}
	// 1 equality + n(n-1) ratio constraints.
	if len(lp.Constraints) != 1+2 {
		t.Errorf("constraints = %d, want 3", len(lp.Constraints))
	}
}

func TestLPMatchesBruteForceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		alpha := rng.Float64() * 3
		p := &Problem{
			Q:     randomStochasticRow(rng, n),
			D:     randomStochasticRow(rng, n),
			Alpha: alpha,
		}
		bf, _, err := p.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		lp, err := p.SolveLP()
		if err != nil {
			t.Fatalf("trial %d (n=%d alpha=%v): %v", trial, n, alpha, err)
		}
		if math.Abs(bf-lp) > 1e-6*(1+bf) {
			t.Errorf("trial %d: brute force %v vs LP %v (n=%d alpha=%v q=%v d=%v)",
				trial, bf, lp, n, alpha, p.Q, p.D)
		}
	}
}

func TestLPDeterministicRows(t *testing.T) {
	// Point-mass rows on different states: ratio should hit e^alpha.
	p := &Problem{Q: []float64{1, 0, 0}, D: []float64{0, 0, 1}, Alpha: 1.5}
	lp, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lp-math.Exp(1.5)) > 1e-6 {
		t.Errorf("LP = %v, want e^1.5 = %v", lp, math.Exp(1.5))
	}
}

func TestToLPAndSolveLPValidation(t *testing.T) {
	bad := &Problem{Q: []float64{1}, D: []float64{0.5, 0.5}, Alpha: 1}
	if _, err := bad.ToLP(); err == nil {
		t.Error("ToLP on invalid problem should fail")
	}
	if _, err := bad.SolveLP(); err == nil {
		t.Error("SolveLP on invalid problem should fail")
	}
	if _, err := bad.LogBruteForce(); err == nil {
		t.Error("LogBruteForce on invalid problem should fail")
	}
}

func TestBruteForceZeroDenominatorEverywhere(t *testing.T) {
	// A d row with zero mass makes every subset denominator... the
	// all-low vertex still has den = sumD = 0; only subsets with no
	// usable denominator are skipped. Validate does not reject it (the
	// entries are non-negative), so BruteForce must report the error.
	p := &Problem{Q: []float64{0.5, 0.5}, D: []float64{0, 0}, Alpha: 1}
	if _, _, err := p.BruteForce(); err == nil {
		t.Error("all-zero denominator should fail")
	}
}

func TestLogBruteForce(t *testing.T) {
	p := &Problem{Q: []float64{1, 0}, D: []float64{0, 1}, Alpha: 0.7}
	lg, err := p.LogBruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lg-0.7) > 1e-12 {
		t.Errorf("log optimum = %v, want 0.7", lg)
	}
}

func TestBruteForceMonotoneInAlpha(t *testing.T) {
	// The optimum ratio is non-decreasing in alpha (larger prior leakage
	// can only allow more).
	rng := rand.New(rand.NewSource(37))
	q := randomStochasticRow(rng, 5)
	d := randomStochasticRow(rng, 5)
	prev := 0.0
	for _, alpha := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		p := &Problem{Q: q, D: d, Alpha: alpha}
		r, _, err := p.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if r < prev-1e-12 {
			t.Errorf("ratio decreased: %v < %v at alpha=%v", r, prev, alpha)
		}
		prev = r
	}
}

func TestBruteForceBoundedByExpAlpha(t *testing.T) {
	// Remark 1: the increment never exceeds alpha, i.e. ratio <= e^alpha.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		alpha := rng.Float64() * 4
		p := &Problem{
			Q:     randomStochasticRow(rng, n),
			D:     randomStochasticRow(rng, n),
			Alpha: alpha,
		}
		r, _, err := p.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if r > math.Exp(alpha)+1e-9 {
			t.Errorf("ratio %v exceeds e^alpha %v", r, math.Exp(alpha))
		}
		if r < 1-1e-12 {
			t.Errorf("ratio %v below 1", r)
		}
	}
}
