// Package lfp formulates the paper's privacy-leakage linear-fractional
// program (problem (18)-(20) in Section IV-A) and solves it exactly by
// two independent routes that serve as baselines and test oracles for
// Algorithm 1:
//
//  1. Charnes-Cooper transformation to a linear program solved by the
//     dense simplex solver in package simplex. This is the stand-in for
//     the external solvers (Gurobi, lp_solve) in the Fig. 5 runtime
//     comparison.
//  2. Exhaustive vertex enumeration: by Lemma 3 of the paper an optimal
//     solution assigns every variable either m or e^alpha*m, so for
//     small n the optimum is found exactly by scanning all 2^n subsets.
//
// The problem, for one ordered pair of transition-matrix rows q and d
// and a prior leakage alpha >= 0, is
//
//	maximize (q.x)/(d.x)
//	subject to x_j <= e^alpha * x_k   for all j, k
//	           0 < x_j < 1.
//
// The objective and the ratio constraints are scale-invariant, so the
// open box (0,1) never binds and is dropped in the LP route.
package lfp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/simplex"
)

// ErrDimension is returned when q and d have mismatched or zero length.
var ErrDimension = errors.New("lfp: q and d must have equal, positive length")

// Problem is one instance of the leakage LFP.
type Problem struct {
	Q, D  []float64 // coefficient rows (rows of a transition matrix)
	Alpha float64   // prior leakage (BPL at t-1 or FPL at t+1); must be >= 0
}

// Validate checks the instance.
func (p *Problem) Validate() error {
	if len(p.Q) == 0 || len(p.Q) != len(p.D) {
		return ErrDimension
	}
	if p.Alpha < 0 || math.IsNaN(p.Alpha) || math.IsInf(p.Alpha, 0) {
		return fmt.Errorf("lfp: alpha must be finite and non-negative, got %v", p.Alpha)
	}
	for i := range p.Q {
		if p.Q[i] < 0 || p.D[i] < 0 {
			return fmt.Errorf("lfp: negative coefficient at %d (q=%v, d=%v)", i, p.Q[i], p.D[i])
		}
	}
	return nil
}

// ToLP applies the Charnes-Cooper transformation. With y = x*t scaled so
// that d.y = 1, the LFP becomes
//
//	maximize q.y
//	subject to d.y = 1
//	           y_j - e^alpha*y_k <= 0  for all ordered pairs j != k
//	           y >= 0.
//
// The optimum of the LP equals the optimum ratio of the LFP.
func (p *Problem) ToLP() (*simplex.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Q)
	ea := math.Exp(p.Alpha)
	lp := &simplex.Problem{
		NumVars:   n,
		Objective: append([]float64(nil), p.Q...),
	}
	lp.Constraints = append(lp.Constraints, simplex.Constraint{
		Coeffs: append([]float64(nil), p.D...),
		Rel:    simplex.EQ,
		RHS:    1,
	})
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			if j == k {
				continue
			}
			c := make([]float64, n)
			c[j] = 1
			c[k] = -ea
			lp.Constraints = append(lp.Constraints, simplex.Constraint{Coeffs: c, Rel: simplex.LE, RHS: 0})
		}
	}
	return lp, nil
}

// SolveLP solves the instance through the Charnes-Cooper LP and the
// simplex solver, returning the optimal ratio (not its logarithm).
func (p *Problem) SolveLP() (float64, error) {
	lp, err := p.ToLP()
	if err != nil {
		return 0, err
	}
	sol, err := simplex.Solve(lp)
	if err != nil {
		return 0, fmt.Errorf("lfp: %w", err)
	}
	return sol.Objective, nil
}

// BruteForceLimit is the largest dimension BruteForce accepts; 2^n
// subsets are enumerated.
const BruteForceLimit = 24

// BruteForce maximizes the ratio by Lemma 3: an optimal x places each
// coordinate at either m or e^alpha*m, so with S the set of coordinates
// at the high level the objective is
//
//	( (Σ_{j∈S} q_j)(e^alpha - 1) + 1 ) / ( (Σ_{j∈S} d_j)(e^alpha - 1) + 1 )
//
// (using Σq = Σd = 1 for stochastic rows; for general non-negative rows
// the same formula holds after adding the constant low-level mass).
// It returns the maximal ratio and the optimal subset as a bitmask.
//
// This is an exact oracle used in tests against both Algorithm 1 and the
// LP route; it is exponential and restricted to n <= BruteForceLimit.
func (p *Problem) BruteForce() (ratio float64, subset uint32, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	n := len(p.Q)
	if n > BruteForceLimit {
		return 0, 0, fmt.Errorf("lfp: brute force limited to n <= %d, got %d", BruteForceLimit, n)
	}
	e := math.Exp(p.Alpha)
	sumQ, sumD := 0.0, 0.0
	for i := range p.Q {
		sumQ += p.Q[i]
		sumD += p.D[i]
	}
	best := math.Inf(-1)
	var bestMask uint32
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		hiQ, hiD := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				hiQ += p.Q[i]
				hiD += p.D[i]
			}
		}
		// x_i = e for i in S, 1 otherwise (scale m = 1).
		num := hiQ*e + (sumQ - hiQ)
		den := hiD*e + (sumD - hiD)
		if den <= 0 {
			continue
		}
		if r := num / den; r > best {
			best = r
			bestMask = mask
		}
	}
	if math.IsInf(best, -1) {
		return 0, 0, errors.New("lfp: no feasible vertex (all denominators vanished)")
	}
	return best, bestMask, nil
}

// LogBruteForce returns log of the BruteForce optimum, i.e. the leakage
// increment L(alpha) for the row pair.
func (p *Problem) LogBruteForce() (float64, error) {
	r, _, err := p.BruteForce()
	if err != nil {
		return 0, err
	}
	return math.Log(r), nil
}
