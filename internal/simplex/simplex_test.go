package simplex

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6 -> optimum at (8/5, 6/5), value 14/5.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Rel: LE, RHS: 4},
			{Coeffs: []float64{3, 1}, Rel: LE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-14.0/5) > 1e-9 {
		t.Errorf("objective = %v, want 2.8", s.Objective)
	}
	if math.Abs(s.X[0]-8.0/5) > 1e-9 || math.Abs(s.X[1]-6.0/5) > 1e-9 {
		t.Errorf("x = %v", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x s.t. x+y == 3, x <= 2 -> x=2, y=1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 3},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-2) > 1e-9 {
		t.Errorf("objective = %v", s.Objective)
	}
	if math.Abs(s.X[1]-1) > 1e-9 {
		t.Errorf("y = %v, want 1", s.X[1])
	}
}

func TestGEConstraint(t *testing.T) {
	// max -x s.t. x >= 3 (i.e. minimize x) -> x = 3.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-3) > 1e-9 {
		t.Errorf("x = %v, want 3", s.X[0])
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -2 is x >= 2; max -x -> x = 2.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: -2},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-2) > 1e-9 {
		t.Errorf("x = %v, want 2", s.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 0},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestMalformed(t *testing.T) {
	cases := []*Problem{
		{NumVars: 0},
		{NumVars: 2, Objective: []float64{1}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Rel: Relation(9), RHS: 1}}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: math.NaN()}}},
		{NumVars: 1, Objective: []float64{math.Inf(1)}},
	}
	for i, p := range cases {
		if _, err := Solve(p); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v, want ErrMalformed", i, err)
		}
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classic degenerate LP (Beale-like structure); Bland's rule must
	// terminate with the right optimum.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-0.05) > 1e-9 {
		t.Errorf("objective = %v, want 0.05", s.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{0, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Objective != 0 {
		t.Errorf("objective = %v", s.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicated equality rows leave a zero-valued artificial basic;
	// the solver must still succeed.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 2},
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 2},
			{Coeffs: []float64{2, 2}, Rel: EQ, RHS: 4},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-4) > 1e-9 {
		t.Errorf("objective = %v, want 4 at (0,2)", s.Objective)
	}
}

func TestFeasibilityOfSolution(t *testing.T) {
	// Random LPs with a known feasible box: the returned point must
	// satisfy every constraint.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(6)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: 1 + rng.Float64()*5}
			for j := range c.Coeffs {
				c.Coeffs[j] = rng.Float64() // non-negative rows + positive RHS => feasible, bounded iff obj pushed up has support... ensure bounded:
			}
			p.Constraints = append(p.Constraints, c)
		}
		// Add a box to guarantee boundedness.
		for j := 0; j < n; j++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: 10}
			c.Coeffs[j] = 1
			p.Constraints = append(p.Constraints, c)
		}
		s := solveOK(t, p)
		for i, c := range p.Constraints {
			lhs := 0.0
			for j, a := range c.Coeffs {
				lhs += a * s.X[j]
			}
			if lhs > c.RHS+1e-7 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, lhs, c.RHS)
			}
		}
		for j, x := range s.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, x)
			}
		}
	}
}

func TestRelationString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("relation strings wrong")
	}
	if Relation(7).String() == "" {
		t.Error("unknown relation should still format")
	}
}

func TestPivotsReported(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 1},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Pivots < 2 {
		t.Errorf("pivots = %d, expected at least 2", s.Pivots)
	}
}
