// Package simplex implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	maximize  c·x
//	subject to  a_i·x (<=|=|>=) b_i   for each constraint i
//	            x >= 0
//
// It is the substrate that stands in for the external LP solvers (Gurobi
// and lp_solve) the paper benchmarks Algorithm 1 against in Fig. 5: the
// linear-fractional privacy-leakage program (18)-(20) is reduced to an LP
// by the Charnes-Cooper transformation (see package lfp) and solved here.
//
// The implementation uses Bland's anti-cycling pivot rule, so it
// terminates on degenerate problems (the leakage LP is highly degenerate:
// n(n-1) ratio constraints over n variables).
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x <= b
	GE                 // a·x >= b
	EQ                 // a·x == b
)

// String returns the conventional symbol for the relation.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Constraint is a single linear constraint a·x (rel) b.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program over NumVars non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // maximize Objective · x
	Constraints []Constraint
}

// Solution holds an optimal basic feasible solution.
type Solution struct {
	X         []float64 // optimal variable assignment, length NumVars
	Objective float64   // optimal objective value
	Pivots    int       // total simplex pivots performed (both phases)
}

// Sentinel errors returned by Solve.
var (
	ErrInfeasible = errors.New("simplex: problem is infeasible")
	ErrUnbounded  = errors.New("simplex: problem is unbounded")
	ErrMalformed  = errors.New("simplex: malformed problem")
)

const tol = 1e-9

// maxPivotsFactor bounds the number of pivots to factor*(rows+cols) as a
// defensive guard; Bland's rule guarantees termination, so hitting the
// bound indicates a numerical pathology rather than cycling.
const maxPivotsFactor = 200

// Validate checks structural well-formedness of the problem.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars = %d", ErrMalformed, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("%w: objective has %d coefficients for %d variables", ErrMalformed, len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("%w: constraint %d has %d coefficients for %d variables", ErrMalformed, i, len(c.Coeffs), p.NumVars)
		}
		if c.Rel != LE && c.Rel != GE && c.Rel != EQ {
			return fmt.Errorf("%w: constraint %d has invalid relation %d", ErrMalformed, i, int(c.Rel))
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: constraint %d has non-finite RHS %v", ErrMalformed, i, c.RHS)
		}
	}
	for j, c := range p.Objective {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: objective coefficient %d is non-finite", ErrMalformed, j)
		}
	}
	return nil
}

// tableau is the working representation: rows are constraints (all
// equalities after adding slack/surplus/artificial columns), the last
// column is the RHS.
type tableau struct {
	m, n   int // constraint rows, total columns (excluding RHS)
	a      [][]float64
	b      []float64
	basis  []int // basis[i] = column basic in row i
	pivots int
}

// Solve runs two-phase simplex and returns an optimal solution, or
// ErrInfeasible / ErrUnbounded.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nVars := p.NumVars
	m := len(p.Constraints)

	// Count auxiliary columns.
	nSlack := 0 // one per inequality (slack for <=, surplus for >=)
	nArt := 0   // one per >= or == row
	for _, c := range p.Constraints {
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := nVars + nSlack + nArt
	t := &tableau{
		m:     m,
		n:     n,
		a:     make([][]float64, m),
		b:     make([]float64, m),
		basis: make([]int, m),
	}
	artCols := make([]int, 0, nArt)
	slackAt := nVars
	artAt := nVars + nSlack
	for i, c := range p.Constraints {
		row := make([]float64, n)
		sign := 1.0
		rel := c.Rel
		rhs := c.RHS
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			rel = flip(rel)
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		t.b[i] = rhs
		switch rel {
		case LE:
			row[slackAt] = 1
			t.basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			t.basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			row[artAt] = 1
			t.basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
		t.a[i] = row
	}

	// Phase 1: minimize sum of artificials, i.e. maximize -sum.
	if len(artCols) > 0 {
		obj := make([]float64, n)
		for _, j := range artCols {
			obj[j] = -1
		}
		val, err := t.optimize(obj)
		if err != nil {
			return nil, err
		}
		if val < -1e-7 {
			return nil, ErrInfeasible
		}
		// Drive any artificial still basic (at value 0) out of the basis.
		isArt := make(map[int]bool, len(artCols))
		for _, j := range artCols {
			isArt[j] = true
		}
		for i := 0; i < t.m; i++ {
			if !isArt[t.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < nVars+nSlack; j++ {
				if math.Abs(t.a[i][j]) > tol {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros across structural columns: redundant
				// constraint; leave the zero-valued artificial basic but
				// block it from re-entering by zeroing the row (it stays 0).
				continue
			}
		}
		// Freeze artificial columns so phase 2 cannot bring them back.
		for _, j := range artCols {
			for i := 0; i < t.m; i++ {
				t.a[i][j] = 0
			}
		}
	}

	// Phase 2: maximize the real objective.
	obj := make([]float64, n)
	copy(obj, p.Objective)
	if _, err := t.optimize(obj); err != nil {
		return nil, err
	}

	x := make([]float64, nVars)
	for i, j := range t.basis {
		if j < nVars {
			x[j] = t.b[i]
		}
	}
	val := 0.0
	for j, c := range p.Objective {
		val += c * x[j]
	}
	return &Solution{X: x, Objective: val, Pivots: t.pivots}, nil
}

// flip converts the relation sense after multiplying a row by -1.
func flip(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// optimize runs primal simplex with Bland's rule for the objective
// "maximize obj·x" on the current tableau, returning the objective value
// of the final basic solution.
func (t *tableau) optimize(obj []float64) (float64, error) {
	// Reduced costs are computed against the current basis each
	// iteration; with Bland's rule the entering variable is the
	// lowest-indexed column with positive reduced cost.
	maxPivots := maxPivotsFactor * (t.m + t.n)
	for iter := 0; ; iter++ {
		if iter > maxPivots {
			return 0, fmt.Errorf("simplex: pivot limit exceeded (%d); numerical breakdown", maxPivots)
		}
		// y = c_B applied to rows: reduced cost r_j = obj_j - sum_i cB_i * a[i][j].
		cb := make([]float64, t.m)
		for i, j := range t.basis {
			cb[i] = obj[j]
		}
		enter := -1
		for j := 0; j < t.n; j++ {
			r := obj[j]
			for i := 0; i < t.m; i++ {
				if cb[i] != 0 {
					r -= cb[i] * t.a[i][j]
				}
			}
			if r > tol {
				enter = j
				break // Bland: first improving column
			}
		}
		if enter < 0 {
			// Optimal: compute objective value.
			val := 0.0
			for i, j := range t.basis {
				val += obj[j] * t.b[i]
			}
			return val, nil
		}
		// Ratio test with Bland tie-break on the leaving basic variable.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > tol {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < bestRatio-tol || (math.Abs(ratio-bestRatio) <= tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func (t *tableau) pivot(row, col int) {
	t.pivots++
	piv := t.a[row][col]
	inv := 1.0 / piv
	for j := 0; j < t.n; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	t.a[row][col] = 1 // kill rounding noise on the pivot itself
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.a[i][col] = 0
		t.b[i] -= f * t.b[row]
		if t.b[i] < 0 && t.b[i] > -tol {
			t.b[i] = 0
		}
	}
	t.basis[row] = col
}
