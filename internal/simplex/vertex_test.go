package simplex

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce2D maximizes a 2-variable LP by enumerating all candidate
// vertices: pairwise intersections of constraint boundaries (including
// the axes x=0, y=0), filtered for feasibility. Exact for bounded
// feasible regions, so it is an independent oracle for the simplex
// implementation.
func bruteForce2D(obj []float64, cons []Constraint) (float64, bool) {
	// Boundary lines: a·x = b for each constraint plus the two axes.
	type line struct{ a0, a1, b float64 }
	var lines []line
	for _, c := range cons {
		lines = append(lines, line{c.Coeffs[0], c.Coeffs[1], c.RHS})
	}
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0})

	feasible := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for _, c := range cons {
			lhs := c.Coeffs[0]*x + c.Coeffs[1]*y
			switch c.Rel {
			case LE:
				if lhs > c.RHS+1e-9 {
					return false
				}
			case GE:
				if lhs < c.RHS-1e-9 {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	best := math.Inf(-1)
	found := false
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			det := lines[i].a0*lines[j].a1 - lines[i].a1*lines[j].a0
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (lines[i].b*lines[j].a1 - lines[i].a1*lines[j].b) / det
			y := (lines[i].a0*lines[j].b - lines[i].b*lines[j].a0) / det
			if feasible(x, y) {
				v := obj[0]*x + obj[1]*y
				if v > best {
					best = v
					found = true
				}
			}
		}
	}
	return best, found
}

func TestSimplexMatchesVertexEnumeration2D(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	trials, checked := 0, 0
	for trials < 400 {
		trials++
		// Random LE constraints with positive RHS (origin feasible) plus
		// a bounding box so the optimum is finite.
		m := 1 + rng.Intn(4)
		obj := []float64{rng.NormFloat64(), rng.NormFloat64()}
		var cons []Constraint
		for i := 0; i < m; i++ {
			cons = append(cons, Constraint{
				Coeffs: []float64{rng.NormFloat64(), rng.NormFloat64()},
				Rel:    LE,
				RHS:    0.5 + rng.Float64()*4,
			})
		}
		cons = append(cons,
			Constraint{Coeffs: []float64{1, 0}, Rel: LE, RHS: 5},
			Constraint{Coeffs: []float64{0, 1}, Rel: LE, RHS: 5},
		)
		want, ok := bruteForce2D(obj, cons)
		if !ok {
			continue
		}
		sol, err := Solve(&Problem{NumVars: 2, Objective: obj, Constraints: cons})
		if err != nil {
			t.Fatalf("trial %d: %v (oracle found optimum %v)", trials, err, want)
		}
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v vs vertex oracle %v\nobj=%v cons=%+v",
				trials, sol.Objective, want, obj, cons)
		}
		checked++
	}
	if checked < 300 {
		t.Fatalf("only %d/%d trials produced a checkable LP", checked, trials)
	}
}

func TestSimplexMatchesVertexEnumerationWithEqualities(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		obj := []float64{rng.NormFloat64(), rng.NormFloat64()}
		// One equality through the positive quadrant plus a box.
		eq := Constraint{
			Coeffs: []float64{0.2 + rng.Float64(), 0.2 + rng.Float64()},
			Rel:    EQ,
			RHS:    1 + rng.Float64()*3,
		}
		cons := []Constraint{
			eq,
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 6},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 6},
		}
		want, ok := bruteForce2D(obj, cons)
		if !ok {
			continue
		}
		sol, err := Solve(&Problem{NumVars: 2, Objective: obj, Constraints: cons})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v vs oracle %v", trial, sol.Objective, want)
		}
		checked++
	}
	if checked < 200 {
		t.Fatalf("only %d trials checkable", checked)
	}
}
