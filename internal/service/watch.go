package service

import (
	"sync"

	"repro/internal/stream"
)

// Live leakage watching. GET /v2/sessions/{name}/watch holds a
// server-sent-events stream open and pushes one frame per published
// step: the population-worst TPL at that step with its backward and
// forward components. The hub is deliberately lossy under backpressure:
// a subscriber that cannot drain watchBuffer frames is disconnected
// (its channel closed) rather than allowed to stall ingestion — SSE
// clients reconnect with Last-Event-ID and replay what they missed
// from history.

// watchBuffer is each subscriber's frame buffer.
const watchBuffer = 64

// watchEvent is one SSE "step" frame.
type watchEvent struct {
	T         int     `json:"t"`
	Eps       float64 `json:"eps"`
	Planned   bool    `json:"planned"`
	TPL       float64 `json:"tpl"`
	BPL       float64 `json:"bpl"`
	FPL       float64 `json:"fpl"`
	WorstUser int     `json:"worst_user"`
}

// watchHub fans step frames out to subscribers.
type watchHub struct {
	mu     sync.Mutex
	subs   map[chan watchEvent]struct{}
	closed bool // session deleted; no further subscriptions
}

// subscribe registers a new subscriber. cancel unregisters it; the
// returned channel is closed by cancel, by the hub on overflow, or by
// closeAll. Subscribing to a closed hub (deleted session) returns an
// already-closed channel.
func (h *watchHub) subscribe() (ch chan watchEvent, cancel func()) {
	ch = make(chan watchEvent, watchBuffer)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	if h.subs == nil {
		h.subs = make(map[chan watchEvent]struct{})
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
}

// closeAll disconnects every subscriber and refuses new ones — the
// session is gone; leaving watchers hanging until a write timeout
// would hide the deletion from them.
func (h *watchHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
	h.closed = true
}

// active reports whether anyone is watching (the ingestion path skips
// computing frames otherwise).
func (h *watchHub) active() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) > 0
}

// broadcast delivers one frame, disconnecting subscribers that are
// watchBuffer frames behind.
func (h *watchHub) broadcast(ev watchEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// notifyStepsLocked pushes one frame per just-landed step to live
// watchers. Caller holds stepMu, which keeps frames ordered by t
// across concurrent batches; the per-frame leakage digest is only
// computed when someone is watching.
func (s *Session) notifyStepsLocked(results []stream.StepResult) {
	if !s.watch.active() {
		return
	}
	for _, r := range results {
		p, err := s.srv.LeakageAt(r.T)
		if err != nil {
			continue // the step exists; this cannot happen, but a frame is not worth a panic
		}
		s.watch.broadcast(watchEvent{
			T:         p.T,
			Eps:       p.Eps,
			Planned:   r.Planned,
			TPL:       p.TPL,
			BPL:       p.BPL,
			FPL:       p.FPL,
			WorstUser: p.WorstUser,
		})
	}
}

// watchFrameAt rebuilds the frame for an already-published step (SSE
// catch-up from ?from= or Last-Event-ID). History does not retain
// whether a step's budget came from the plan, so catch-up frames report
// planned=false — the flag is advisory and only live frames carry it.
func (s *Session) watchFrameAt(t int) (watchEvent, error) {
	p, err := s.srv.LeakageAt(t)
	if err != nil {
		return watchEvent{}, err
	}
	return watchEvent{T: p.T, Eps: p.Eps, TPL: p.TPL, BPL: p.BPL, FPL: p.FPL, WorstUser: p.WorstUser}, nil
}
