package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// v2Session creates a small session over the handler and returns its
// name.
func v2Session(t *testing.T, h http.Handler, name string) string {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"domain":2,"seed":11,"cohorts":[{"users":2,"model":%s},{"users":3,"model":{}}]}`,
		name, fig7ModelJSON(t))
	rec := doJSON(t, h, "POST", "/v2/sessions", body, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	return name
}

// batchBody renders a JSON-array steps body of n identical steps.
func batchBody(n int, eps float64) string {
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"values":[0,1,0,1,1],"eps":%g}`, eps)
	}
	sb.WriteString("]")
	return sb.String()
}

func TestV2ProblemJSON(t *testing.T) {
	h := NewAPI().Handler()
	v2Session(t, h, "p1")
	if rec := doJSON(t, h, "POST", "/v2/sessions/p1/steps", batchBody(2, 0.1), nil); rec.Code != http.StatusOK {
		t.Fatalf("seed steps: %d %s", rec.Code, rec.Body.String())
	}

	tests := []struct {
		name   string
		method string
		target string
		body   string
		status int
		code   string
	}{
		{"session not found", "GET", "/v2/sessions/nope", "", 404, CodeSessionNotFound},
		{"delete not found", "DELETE", "/v2/sessions/nope", "", 404, CodeSessionNotFound},
		{"session exists", "POST", "/v2/sessions", `{"name":"p1","domain":2,"users":5}`, 409, CodeSessionExists},
		{"bad config", "POST", "/v2/sessions", `{"name":"x","domain":2}`, 400, CodeInvalidRequest},
		{"no plan", "POST", "/v2/sessions/p1/steps", `[{"values":[0,1,0,1,1]}]`, 409, CodeInvalidState},
		{"empty batch", "POST", "/v2/sessions/p1/steps", `[]`, 400, CodeInvalidRequest},
		{"bad step shape", "POST", "/v2/sessions/p1/steps", `[{"values":[0],"eps":0.1}]`, 400, CodeInvalidRequest},
		{"unknown field", "POST", "/v2/sessions/p1/steps", `[{"vals":[0,1,0,1,1],"eps":0.1}]`, 400, CodeInvalidRequest},
		{"bad format", "GET", "/v2/sessions/p1/report?format=xml", "", 400, CodeUnsupportedFormat},
		{"v1 bad format shares the problem model", "GET", "/v1/sessions/p1/report?format=xml", "", 400, CodeUnsupportedFormat},
		{"snapshot in ephemeral mode", "POST", "/v2/sessions/p1/snapshot", "", 409, CodeSnapshotUnavailable},
		{"bad cursor", "GET", "/v2/sessions/p1/published?cursor=%21%21", "", 400, CodeInvalidRequest},
		{"bad limit", "GET", "/v2/sessions/p1/published?limit=-3", "", 400, CodeInvalidRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var p Problem
			rec := doJSON(t, h, tc.method, tc.target, tc.body, &p)
			if rec.Code != tc.status {
				t.Fatalf("%s %s: status %d, want %d (body %s)", tc.method, tc.target, rec.Code, tc.status, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != problemContentType {
				t.Fatalf("content type %q", ct)
			}
			if p.Code != tc.code || p.Status != tc.status || p.Title == "" || p.Detail == "" {
				t.Fatalf("problem %+v, want code %q", p, tc.code)
			}
			if p.Error != p.Detail {
				t.Fatalf("legacy error member %q != detail %q", p.Error, p.Detail)
			}
			if tc.code == CodeUnsupportedFormat && len(p.Supported) == 0 {
				t.Fatalf("unsupported_format problem lists no supported formats: %+v", p)
			}
		})
	}
}

func TestV2BatchIngestArrayAndNDJSON(t *testing.T) {
	h := NewAPI().Handler()
	v2Session(t, h, "b1")

	// JSON array.
	var resp batchResponse
	rec := doJSON(t, h, "POST", "/v2/sessions/b1/steps", batchBody(3, 0.1), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("array batch: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Count != 3 || resp.FirstT != 1 || resp.LastT != 3 || len(resp.Results) != 3 {
		t.Fatalf("batch response %+v", resp)
	}
	for i, r := range resp.Results {
		if r.T != i+1 || r.Eps != 0.1 || r.Planned || len(r.Published) != 2 {
			t.Fatalf("result %d: %+v", i, r)
		}
	}

	// NDJSON, mixing values and counts shapes.
	nd := `{"values":[0,1,0,1,1],"eps":0.2}
{"counts":[2,3],"eps":0.3}
`
	req := httptest.NewRequest("POST", "/v2/sessions/b1/steps", strings.NewReader(nd))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("ndjson batch: %d %s", rr.Code, rr.Body.String())
	}
	var nresp batchResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &nresp); err != nil {
		t.Fatal(err)
	}
	if nresp.Count != 2 || nresp.FirstT != 4 || nresp.LastT != 5 {
		t.Fatalf("ndjson response %+v", nresp)
	}
	if nresp.Results[0].Eps != 0.2 || nresp.Results[1].Eps != 0.3 {
		t.Fatalf("ndjson budgets %+v", nresp.Results)
	}

	// Atomicity over the wire: a bad step in the middle applies nothing.
	bad := `[{"values":[0,1,0,1,1],"eps":0.1},{"values":[0,1,0,1,1],"eps":-5}]`
	if rec := doJSON(t, h, "POST", "/v2/sessions/b1/steps", bad, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad batch status %d", rec.Code)
	}
	var sum Summary
	doJSON(t, h, "GET", "/v2/sessions/b1", "", &sum)
	if sum.T != 5 {
		t.Fatalf("rejected batch advanced t to %d, want 5", sum.T)
	}
}

func TestV2Pagination(t *testing.T) {
	h := NewAPI().Handler()
	v2Session(t, h, "pg")
	if rec := doJSON(t, h, "POST", "/v2/sessions/pg/steps", batchBody(7, 0.1), nil); rec.Code != http.StatusOK {
		t.Fatalf("steps: %d", rec.Code)
	}

	type page struct {
		T          int             `json:"t"`
		Items      []publishedItem `json:"items"`
		NextCursor string          `json:"next_cursor"`
	}
	var all []publishedItem
	cursor := ""
	pages := 0
	for {
		target := "/v2/sessions/pg/published?limit=3"
		if cursor != "" {
			target += "&cursor=" + cursor
		}
		var p page
		if rec := doJSON(t, h, "GET", target, "", &p); rec.Code != http.StatusOK {
			t.Fatalf("page: %d %s", rec.Code, rec.Body.String())
		}
		all = append(all, p.Items...)
		pages++
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
	}
	if pages != 3 || len(all) != 7 {
		t.Fatalf("%d pages, %d items", pages, len(all))
	}
	for i, it := range all {
		if it.T != i+1 || it.Eps != 0.1 || len(it.Published) != 2 {
			t.Fatalf("item %d: %+v", i, it)
		}
	}

	// TPL pagination agrees with the v1 full series.
	var v1 struct {
		TPL []float64 `json:"tpl"`
	}
	doJSON(t, h, "GET", "/v1/sessions/pg/tpl?user=0", "", &v1)
	type tplPage struct {
		Items      []tplItem `json:"items"`
		NextCursor string    `json:"next_cursor"`
	}
	var series []tplItem
	cursor = ""
	for {
		target := "/v2/sessions/pg/tpl?user=0&limit=2"
		if cursor != "" {
			target += "&cursor=" + cursor
		}
		var p tplPage
		if rec := doJSON(t, h, "GET", target, "", &p); rec.Code != http.StatusOK {
			t.Fatalf("tpl page: %d %s", rec.Code, rec.Body.String())
		}
		series = append(series, p.Items...)
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
	}
	if len(series) != len(v1.TPL) {
		t.Fatalf("paged %d items, v1 %d", len(series), len(v1.TPL))
	}
	for i, it := range series {
		if it.T != i+1 || it.TPL != v1.TPL[i] {
			t.Fatalf("tpl item %d: %+v, want %v", i, it, v1.TPL[i])
		}
	}

	// Past-the-end page: empty, no cursor, but bad users still rejected.
	var p tplPage
	doJSON(t, h, "GET", "/v2/sessions/pg/tpl?user=0&cursor="+encodeCursor(8), "", &p)
	if len(p.Items) != 0 || p.NextCursor != "" {
		t.Fatalf("past-end page %+v", p)
	}
	if rec := doJSON(t, h, "GET", "/v2/sessions/pg/tpl?user=99&cursor="+encodeCursor(8), "", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad user on empty page: %d", rec.Code)
	}
}

// postKeyed sends a batch with an Idempotency-Key.
func postKeyed(t *testing.T, h http.Handler, target, key, body string) (*httptest.ResponseRecorder, batchResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", target, strings.NewReader(body))
	req.Header.Set("Idempotency-Key", key)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp batchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	return rec, resp
}

func TestV2IdempotentRetry(t *testing.T) {
	h := NewAPI().Handler()
	v2Session(t, h, "idem")

	body := batchBody(3, 0.1)
	rec1, resp1 := postKeyed(t, h, "/v2/sessions/idem/steps", "key-A", body)
	if rec1.Code != http.StatusOK || resp1.Replayed {
		t.Fatalf("first: %d %+v", rec1.Code, resp1)
	}

	// Retry: replayed, bit-identical body, header set, no new steps.
	rec2, resp2 := postKeyed(t, h, "/v2/sessions/idem/steps", "key-A", body)
	if rec2.Code != http.StatusOK || !resp2.Replayed {
		t.Fatalf("retry: %d %+v", rec2.Code, resp2)
	}
	if rec2.Header().Get("Idempotency-Replayed") != "true" {
		t.Fatal("missing Idempotency-Replayed header")
	}
	if resp2.FirstT != resp1.FirstT || resp2.LastT != resp1.LastT {
		t.Fatalf("replayed span %+v != original %+v", resp2, resp1)
	}
	for i := range resp1.Results {
		a, b := resp1.Results[i], resp2.Results[i]
		if a.T != b.T || a.Eps != b.Eps || !bytes.Equal(mustJSON(t, a.Published), mustJSON(t, b.Published)) {
			t.Fatalf("replayed result %d differs: %+v vs %+v", i, a, b)
		}
	}
	var sum Summary
	doJSON(t, h, "GET", "/v2/sessions/idem", "", &sum)
	if sum.T != 3 {
		t.Fatalf("retry advanced t to %d, want 3", sum.T)
	}

	// Same key, different body: conflict.
	rec3, _ := postKeyed(t, h, "/v2/sessions/idem/steps", "key-A", batchBody(2, 0.2))
	if rec3.Code != http.StatusUnprocessableEntity {
		t.Fatalf("conflict: %d %s", rec3.Code, rec3.Body.String())
	}
	var p Problem
	if err := json.Unmarshal(rec3.Body.Bytes(), &p); err != nil || p.Code != CodeIdempotencyConflict {
		t.Fatalf("conflict problem %+v (%v)", p, err)
	}

	// A fresh key applies fresh steps.
	rec4, resp4 := postKeyed(t, h, "/v2/sessions/idem/steps", "key-B", batchBody(1, 0.2))
	if rec4.Code != http.StatusOK || resp4.Replayed || resp4.FirstT != 4 {
		t.Fatalf("fresh key: %d %+v", rec4.Code, resp4)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestIdemCacheEviction fills the per-session LRU past its capacity:
// the oldest key degrades to at-most-once (applied again), recent keys
// still replay.
func TestIdemCacheEviction(t *testing.T) {
	h := NewAPI().Handler()
	v2Session(t, h, "evict")
	body := batchBody(1, 0.1)
	for i := 0; i <= idemCacheSize; i++ { // key-0 .. key-N fills one past capacity
		rec, resp := postKeyed(t, h, "/v2/sessions/evict/steps", fmt.Sprintf("key-%d", i), body)
		if rec.Code != http.StatusOK || resp.Replayed {
			t.Fatalf("key-%d: %d %+v", i, rec.Code, resp)
		}
	}
	// key-0 was evicted: the batch is applied anew, not replayed.
	rec, resp := postKeyed(t, h, "/v2/sessions/evict/steps", "key-0", body)
	if rec.Code != http.StatusOK || resp.Replayed {
		t.Fatalf("evicted key replayed: %+v", resp)
	}
	// key-1 survived (it was not the LRU victim after key-0's reinsert).
	rec, resp = postKeyed(t, h, "/v2/sessions/evict/steps", fmt.Sprintf("key-%d", idemCacheSize), body)
	if rec.Code != http.StatusOK || !resp.Replayed {
		t.Fatalf("recent key not replayed: %+v", resp)
	}
}

// TestIdempotencySurvivesRestart drives keyed batches into a durable
// registry, restarts it (snapshot + journal replay), and retries the
// same keys: the restored process must replay, not re-apply.
func TestIdempotencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	reg1 := durableRegistry(t, dir, 64)
	h1 := (&API{reg: reg1, started: reg1.now()}).Handler()
	v2Session(t, h1, "dur")
	body := batchBody(3, 0.1)
	rec, resp := postKeyed(t, h1, "/v2/sessions/dur/steps", "boot-key", body)
	if rec.Code != http.StatusOK || resp.Replayed {
		t.Fatalf("first: %d %+v", rec.Code, resp)
	}
	// A second keyed batch that only reaches the journal (no snapshot
	// coalescing yet at snapshotEvery=64).
	rec, resp2 := postKeyed(t, h1, "/v2/sessions/dur/steps", "tail-key", batchBody(2, 0.2))
	if rec.Code != http.StatusOK || resp2.Replayed {
		t.Fatalf("second: %d %+v", rec.Code, resp2)
	}
	// No graceful Close: restart from whatever is on disk.
	reg2 := durableRegistry(t, dir, 64)
	restored, failed := reg2.RestoreAll()
	if len(failed) > 0 || len(restored) != 1 {
		t.Fatalf("restore: %v / %v", restored, failed)
	}
	h2 := (&API{reg: reg2, started: reg2.now()}).Handler()
	for _, tc := range []struct {
		key, body string
		firstT    int
	}{{"boot-key", body, 1}, {"tail-key", batchBody(2, 0.2), 4}} {
		rec, resp := postKeyed(t, h2, "/v2/sessions/dur/steps", tc.key, tc.body)
		if rec.Code != http.StatusOK || !resp.Replayed || resp.FirstT != tc.firstT {
			t.Fatalf("restored retry %q: %d %+v", tc.key, rec.Code, resp)
		}
	}
	var sum Summary
	doJSON(t, h2, "GET", "/v2/sessions/dur", "", &sum)
	if sum.T != 5 {
		t.Fatalf("restored t = %d, want 5 (retries must not re-apply)", sum.T)
	}
}

// TestV2Watch subscribes over a real TCP server (SSE needs flushing),
// lands a batch, and checks the pushed frames.
func TestV2Watch(t *testing.T) {
	api := NewAPI()
	h := api.Handler()
	srv := httptest.NewServer(h)
	defer srv.Close()
	v2Session(t, h, "live")
	if rec := doJSON(t, h, "POST", "/v2/sessions/live/steps", batchBody(2, 0.1), nil); rec.Code != http.StatusOK {
		t.Fatalf("pre-steps: %d", rec.Code)
	}

	// Watch from the beginning: catch-up frames for steps 1-2, then live.
	req, err := http.NewRequest("GET", srv.URL+"/v2/sessions/live/watch?from=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("watch: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	frames := make(chan watchEvent, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var ev watchEvent
				if json.Unmarshal([]byte(data), &ev) == nil {
					frames <- ev
				}
			}
		}
		close(frames)
	}()

	read := func() watchEvent {
		t.Helper()
		select {
		case ev, ok := <-frames:
			if !ok {
				t.Fatal("stream closed early")
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("no frame within 5s")
		}
		panic("unreachable")
	}
	for want := 1; want <= 2; want++ {
		ev := read()
		if ev.T != want || ev.Eps != 0.1 || ev.TPL <= 0 {
			t.Fatalf("catch-up frame %+v, want t=%d", ev, want)
		}
	}
	// A live step shows up as a pushed frame with the leakage digest.
	if rec := doJSON(t, h, "POST", "/v2/sessions/live/steps", batchBody(1, 0.3), nil); rec.Code != http.StatusOK {
		t.Fatalf("live step: %d", rec.Code)
	}
	ev := read()
	if ev.T != 3 || ev.Eps != 0.3 {
		t.Fatalf("live frame %+v", ev)
	}
	if diff := ev.BPL + ev.FPL - ev.Eps - ev.TPL; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("frame %+v violates TPL = BPL+FPL-eps", ev)
	}
}

// TestV1Deprecated checks the deprecation marking on v1 and its absence
// on v2.
func TestV1Deprecated(t *testing.T) {
	h := NewAPI().Handler()
	v2Session(t, h, "dep")
	rec := doJSON(t, h, "GET", "/v1/sessions/dep", "", nil)
	if rec.Header().Get("Deprecation") != "true" || !strings.Contains(rec.Header().Get("Link"), "successor-version") {
		t.Fatalf("v1 deprecation headers missing: %v", rec.Header())
	}
	rec = doJSON(t, h, "GET", "/v2/sessions/dep", "", nil)
	if rec.Header().Get("Deprecation") != "" {
		t.Fatal("v2 carries a Deprecation header")
	}
}
