package service

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/persist"
	"repro/internal/stream"
)

// ErrNotFound is returned when a named session does not exist.
var ErrNotFound = errors.New("service: session not found")

// ErrExists is returned when creating a session whose name is taken.
var ErrExists = errors.New("service: session already exists")

// ErrCapacity is returned when creating a session would push the
// aggregate declared population across all sessions past the process
// ceiling — the per-session limits bound one request's allocation,
// this bounds their sum.
var ErrCapacity = errors.New("service: aggregate population capacity exhausted")

// ErrNoStore is returned by snapshot operations when the registry runs
// in ephemeral mode (no state directory attached).
var ErrNoStore = errors.New("service: no snapshot store attached (ephemeral mode)")

// maxTotalUsers caps the total declared population across sessions
// (~40 B of per-user bookkeeping, so ~2 GB at the cap).
const maxTotalUsers = 50_000_000

// Session is one tenant: a named, configured stream.Server plus the
// bookkeeping the API reports. The embedded server carries its own
// concurrency guarantees; the session's mutex only serializes the
// collect-then-read-budget sequence of the steps endpoint so each
// response reports its own step's budget.
type Session struct {
	name    string
	created time.Time
	srv     *stream.Server
	now     func() time.Time

	// stepMu serializes the collect-then-read-budget sequence of the
	// steps endpoint and, in durable mode, the persist pipeline behind
	// it (journal append order must match step order).
	stepMu        sync.Mutex
	store         *persist.Store
	journal       *persist.Journal
	journalBad    bool   // a failed append poisoned the tail; stop appending until a snapshot resets it
	cfgJSON       []byte // the creating config, for restore-time rebuilds
	snapshotEvery int

	// persistMu guards only the bookkeeping below, so health and
	// summary reads never block behind an in-flight collect or an
	// fsync'ing snapshot held under stepMu.
	persistMu      sync.Mutex
	lastSnapT      int
	lastSnapAt     time.Time
	journalRecords int
	persistErr     error

	// idem remembers recent idempotency-keyed batches (guarded by
	// stepMu; persisted — see idempotency.go and persistence.go).
	idem idemCache
	// watch fans live step frames out to SSE subscribers (watch.go).
	watch watchHub
}

// Name returns the session's registry key.
func (s *Session) Name() string { return s.name }

// Created returns the creation timestamp.
func (s *Session) Created() time.Time { return s.created }

// Server returns the underlying release server (safe for concurrent
// use; see the stream package's concurrency contract).
func (s *Session) Server() *stream.Server { return s.srv }

// Collect runs one explicit-budget step and returns the published
// histogram together with the 1-based step index it landed on. It is a
// one-element CollectBatch (idempotency.go) — both API versions and
// embedding callers share that endpoint.
func (s *Session) Collect(values []int, eps float64) ([]float64, int, float64, error) {
	results, _, err := s.CollectBatch("", []stream.BatchStep{{Values: values, Eps: &eps}})
	if err != nil {
		return nil, 0, 0, err
	}
	r := results[0]
	return r.Published, r.T, r.Eps, nil
}

// CollectPlanned runs one plan-budgeted step, reporting the budget the
// plan charged.
func (s *Session) CollectPlanned(values []int) ([]float64, int, float64, error) {
	results, _, err := s.CollectBatch("", []stream.BatchStep{{Values: values}})
	if err != nil {
		return nil, 0, 0, err
	}
	r := results[0]
	return r.Published, r.T, r.Eps, nil
}

// Summary is the API's session digest.
type Summary struct {
	Name        string    `json:"name"`
	Domain      int       `json:"domain"`
	Users       int       `json:"users"`
	Cohorts     int       `json:"cohorts"`
	T           int       `json:"t"`
	Noise       string    `json:"noise"`
	Sensitivity float64   `json:"sensitivity"`
	HasPlan     bool      `json:"has_plan"`
	PlanStep    int       `json:"plan_step,omitempty"`
	Created     time.Time `json:"created"`
	// Persistence reports snapshot/journal health; absent in ephemeral
	// mode.
	Persistence *PersistInfo `json:"persistence,omitempty"`
}

// Summary captures the session's current state.
func (s *Session) Summary() Summary {
	return Summary{
		Name:        s.name,
		Domain:      s.srv.Domain(),
		Users:       s.srv.Users(),
		Cohorts:     s.srv.Cohorts(),
		T:           s.srv.T(),
		Noise:       noiseName(s.srv.Noise()),
		Sensitivity: s.srv.Sensitivity(),
		HasPlan:     s.srv.HasPlan(),
		PlanStep:    s.srv.PlanStep(),
		Created:     s.created,
		Persistence: s.persistInfo(),
	}
}

// Registry is the concurrency-safe session store. The zero value is not
// usable; construct with NewRegistry.
//
// The registry owns a compiled-model cache shared by every session it
// creates: tenants declaring content-identical correlation chains reuse
// one compiled leakage engine per distinct transition matrix instead of
// re-quantifying it per session.
type Registry struct {
	mu         sync.RWMutex
	sessions   map[string]*Session
	totalUsers int              // declared population across all sessions
	capacity   int              // aggregate population ceiling; lowered in tests
	now        func() time.Time // injectable for tests
	models     *stream.ModelCache

	// Durability (persistence.go); nil store means ephemeral mode.
	store         *persist.Store
	snapshotEvery int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		sessions: make(map[string]*Session),
		capacity: maxTotalUsers,
		now:      time.Now,
		models:   stream.NewModelCache(),
	}
}

// ModelCache exposes the registry's shared compiled-model cache (for
// stats reporting and tests).
func (r *Registry) ModelCache() *stream.ModelCache { return r.models }

// checkName validates a session name: non-empty, at most 128 bytes, no
// path or whitespace characters (names appear in URL paths).
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("service: session name must not be empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("service: session name longer than 128 bytes")
	}
	if strings.ContainsAny(name, "/ \t\r\n") {
		return fmt.Errorf("service: session name %q contains a slash or whitespace", name)
	}
	return nil
}

// Create builds the configured server and registers it under the
// config's name. The build happens outside the registry lock, so a
// slow plan construction does not block the store; only the final
// insert is serialized, and a name collision discovered then returns
// ErrExists with the freshly built session discarded.
func (r *Registry) Create(cfg *SessionConfig) (*Session, error) {
	if err := checkName(cfg.Name); err != nil {
		return nil, err
	}
	pop := cfg.population()
	r.mu.RLock()
	_, taken := r.sessions[cfg.Name]
	over := r.totalUsers+pop > r.capacity
	r.mu.RUnlock()
	if taken {
		return nil, fmt.Errorf("%w: %q", ErrExists, cfg.Name)
	}
	if over {
		return nil, fmt.Errorf("%w: %d users in use, %d requested, limit %d", ErrCapacity, r.Users(), pop, r.capacity)
	}
	srv, err := cfg.BuildCached(r.models)
	if err != nil {
		return nil, err
	}
	s := &Session{name: cfg.Name, created: r.now(), srv: srv, now: r.now}
	// The session is inserted before its persistence is initialized, so
	// a concurrent create of the same name loses cleanly at the map —
	// never by overwriting the winner's files. Holding stepMu across the
	// initialization keeps any early step from slipping past the
	// journal; a persist failure rolls the insert back.
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	r.mu.Lock()
	if _, taken := r.sessions[cfg.Name]; taken {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, cfg.Name)
	}
	if r.totalUsers+srv.Users() > r.capacity {
		inUse := r.totalUsers
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %d users in use, %d requested, limit %d", ErrCapacity, inUse, srv.Users(), r.capacity)
	}
	r.sessions[cfg.Name] = s
	r.totalUsers += srv.Users()
	store, every := r.store, r.snapshotEvery
	r.mu.Unlock()
	if store != nil {
		if err := s.initPersistenceLocked(store, cfg, every); err != nil {
			r.mu.Lock()
			owned := r.sessions[cfg.Name] == s
			if owned {
				delete(r.sessions, cfg.Name)
				r.totalUsers -= srv.Users()
			}
			r.mu.Unlock()
			// Only clean up files while the name is still ours: if a
			// concurrent Delete already freed the slot, a re-created
			// session of the same name may own them by now.
			if owned {
				store.Remove(cfg.Name)
			}
			return nil, err
		}
	}
	return s, nil
}

// Users returns the aggregate declared population across all sessions.
func (r *Registry) Users() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.totalUsers
}

// Get returns the named session.
func (r *Registry) Get(name string) (*Session, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sessions[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return s, nil
}

// Delete removes the named session, releasing its population from the
// aggregate capacity and deleting its persisted state. The map removal
// happens first (under r.mu alone — taking stepMu under r.mu would
// invert Create's lock order), so the file cleanup races no new steps.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	s, ok := r.sessions[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.sessions, name)
	r.totalUsers -= s.srv.Users()
	r.mu.Unlock()
	s.stepMu.Lock()
	err := s.dropPersistenceLocked()
	s.stepMu.Unlock()
	// Disconnect live watchers — their session no longer exists, and a
	// silently idle stream would hide that until a write timeout.
	s.watch.closeAll()
	return err
}

// List returns all sessions sorted by name.
func (r *Registry) List() []*Session {
	r.mu.RLock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of registered sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}
