package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/enginecache"
	"repro/internal/persist"
	"repro/internal/stream"
)

// ErrNotFound is returned when a named session does not exist.
var ErrNotFound = errors.New("service: session not found")

// ErrExists is returned when creating a session whose name is taken.
var ErrExists = errors.New("service: session already exists")

// ErrCapacity is returned when creating a session would push the
// aggregate declared population across all sessions past the process
// ceiling — the per-session limits bound one request's allocation,
// this bounds their sum.
var ErrCapacity = errors.New("service: aggregate population capacity exhausted")

// ErrNoStore is returned by snapshot operations when the registry runs
// in ephemeral mode (no state directory attached).
var ErrNoStore = errors.New("service: no snapshot store attached (ephemeral mode)")

// maxTotalUsers caps the total declared population across sessions
// (~40 B of per-user bookkeeping, so ~2 GB at the cap).
const maxTotalUsers = 50_000_000

// Session is one tenant: a named, configured stream.Server plus the
// bookkeeping the API reports. The embedded server carries its own
// concurrency guarantees; the session's mutex only serializes the
// collect-then-read-budget sequence of the steps endpoint so each
// response reports its own step's budget.
type Session struct {
	name    string
	created time.Time
	srv     *stream.Server
	now     func() time.Time

	// stepMu serializes the collect-then-read-budget sequence of the
	// steps endpoint and, in durable mode, the persist pipeline behind
	// it (journal append order must match step order). Holding it
	// across journal fsyncs is the ack-after-durable contract itself —
	// a step is not acknowledged until its record is on disk — so the
	// I/O lives under this lock by design. Liveness reads (healthz,
	// status) must use pmu instead and must never touch stepMu.
	//tplvet:allow locksafe stepMu orders the durability pipeline; ack-after-fsync requires I/O under it, and liveness paths use pmu instead
	stepMu        sync.Mutex
	store         *persist.Store
	journal       *persist.Journal
	journalBad    bool   // a failed append poisoned the tail; stop appending until a snapshot resets it
	cfgJSON       []byte // the creating config, for restore-time rebuilds
	snapshotEvery int
	syncMode      JournalSyncMode         // how appends reach stable storage
	committer     *persist.GroupCommitter // shared group-commit leader (JournalSyncGroup)

	// persistMu guards only the bookkeeping below, so health and
	// summary reads never block behind an in-flight collect or an
	// fsync'ing snapshot held under stepMu.
	persistMu      sync.Mutex
	lastSnapT      int
	lastSnapAt     time.Time
	journalRecords int
	persistErr     error

	// retired marks a session whose state was migrated to another shard
	// (guarded by stepMu): any write that raced the migration and still
	// holds this pointer is refused with WrongShardError pointing at
	// retiredTo, so no step can land on the orphaned server after its
	// state left the process. See migrate.go.
	retired   bool
	retiredTo string

	// idem remembers recent idempotency-keyed batches (guarded by
	// stepMu; persisted — see idempotency.go and persistence.go).
	idem idemCache
	// watch fans live step frames out to SSE subscribers (watch.go).
	watch watchHub

	// sink points at the registry's decision-sink slot (decision.go);
	// nil for sessions built without a registry. modelRevision is the
	// bundle revision the session's model refs resolved from, pinned at
	// creation and persisted with the config.
	sink          *atomic.Pointer[sinkBox]
	modelRevision string
}

// Name returns the session's registry key.
func (s *Session) Name() string { return s.name }

// Created returns the creation timestamp.
func (s *Session) Created() time.Time { return s.created }

// Server returns the underlying release server (safe for concurrent
// use; see the stream package's concurrency contract).
func (s *Session) Server() *stream.Server { return s.srv }

// Collect runs one explicit-budget step and returns the published
// histogram together with the 1-based step index it landed on. It is a
// one-element CollectBatch (idempotency.go) — both API versions and
// embedding callers share that endpoint.
func (s *Session) Collect(values []int, eps float64) ([]float64, int, float64, error) {
	results, _, err := s.CollectBatch("", []stream.BatchStep{{Values: values, Eps: &eps}})
	if err != nil {
		return nil, 0, 0, err
	}
	r := results[0]
	return r.Published, r.T, r.Eps, nil
}

// CollectPlanned runs one plan-budgeted step, reporting the budget the
// plan charged.
func (s *Session) CollectPlanned(values []int) ([]float64, int, float64, error) {
	results, _, err := s.CollectBatch("", []stream.BatchStep{{Values: values}})
	if err != nil {
		return nil, 0, 0, err
	}
	r := results[0]
	return r.Published, r.T, r.Eps, nil
}

// Summary is the API's session digest.
type Summary struct {
	Name        string  `json:"name"`
	Domain      int     `json:"domain"`
	Users       int     `json:"users"`
	Cohorts     int     `json:"cohorts"`
	T           int     `json:"t"`
	Noise       string  `json:"noise"`
	Sensitivity float64 `json:"sensitivity"`
	HasPlan     bool    `json:"has_plan"`
	PlanStep    int     `json:"plan_step,omitempty"`
	// PlanHorizon is the attached plan's finite horizon (0 when
	// horizonless or no plan): PlanStep/PlanHorizon is the budget
	// pressure the status plugin reports.
	PlanHorizon int `json:"plan_horizon,omitempty"`
	// ModelRevision is the bundle revision the session's models were
	// resolved from (empty for inline-configured sessions).
	ModelRevision string    `json:"model_revision,omitempty"`
	Created       time.Time `json:"created"`
	// Persistence reports snapshot/journal health; absent in ephemeral
	// mode.
	Persistence *PersistInfo `json:"persistence,omitempty"`
}

// Summary captures the session's current state.
func (s *Session) Summary() Summary {
	return Summary{
		Name:          s.name,
		Domain:        s.srv.Domain(),
		Users:         s.srv.Users(),
		Cohorts:       s.srv.Cohorts(),
		T:             s.srv.T(),
		Noise:         noiseName(s.srv.Noise()),
		Sensitivity:   s.srv.Sensitivity(),
		HasPlan:       s.srv.HasPlan(),
		PlanStep:      s.srv.PlanStep(),
		PlanHorizon:   s.srv.PlanHorizon(),
		ModelRevision: s.modelRevision,
		Created:       s.created,
		Persistence:   s.persistInfo(),
	}
}

// sessionStripes shards the session table across independent locks
// (power of two; the stripe is picked by name hash). A single shared
// RWMutex made every session lookup — one per ingest request —
// rendezvous on one cache line; with striping, concurrent ingestion
// into different sessions contends only when names collide in a
// stripe, and create/delete churn never stalls unrelated traffic.
const sessionStripes = 64

// sessionStripe is one shard of the session table.
type sessionStripe struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	// tombstones maps migrated-away session names to their new owner's
	// base URL. Checked only on a Get miss, so the tombstone table costs
	// the hot path nothing. Persisted as .tomb files (migrate.go).
	tombstones map[string]string
}

// Registry is the concurrency-safe session store. The zero value is not
// usable; construct with NewRegistry.
//
// The registry owns a compiled-model cache shared by every session it
// creates: tenants declaring content-identical correlation chains reuse
// one compiled leakage engine per distinct transition matrix instead of
// re-quantifying it per session.
type Registry struct {
	stripes [sessionStripes]sessionStripe
	// totalUsers is the declared population across all sessions.
	// Creations reserve capacity with a CAS loop before inserting, so
	// the ceiling holds without any lock shared across stripes.
	totalUsers atomic.Int64
	capacity   int              // aggregate population ceiling; lowered in tests
	now        func() time.Time // injectable for tests
	models     *stream.ModelCache
	// engineCache is the optional on-disk tier behind models: compiled
	// engines persist across process restarts, keyed by chain content.
	// Attached at boot (SetEngineCache), before any session exists.
	engineCache *enginecache.Cache
	// decisions is the attached decision sink (decision.go); sessions
	// load through a pointer to this slot, so SetDecisionSink reaches
	// every live session without touching any per-session lock.
	decisions atomic.Pointer[sinkBox]

	// Durability wiring (persistence.go); boot-time configuration
	// guarded by pmu, nil store means ephemeral mode.
	pmu           sync.Mutex
	store         *persist.Store
	snapshotEvery int
	syncMode      JournalSyncMode
	committer     *persist.GroupCommitter
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		capacity: maxTotalUsers,
		now:      time.Now,
		models:   stream.NewModelCache(),
	}
	for i := range r.stripes {
		r.stripes[i].sessions = make(map[string]*Session)
		r.stripes[i].tombstones = make(map[string]string)
	}
	return r
}

// stripe returns the shard owning the given session name (FNV-1a).
func (r *Registry) stripe(name string) *sessionStripe {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &r.stripes[h&(sessionStripes-1)]
}

// reserveUsers claims n users of aggregate capacity, or reports
// ErrCapacity without claiming anything. Release by adding -n back.
func (r *Registry) reserveUsers(n int) error {
	for {
		cur := r.totalUsers.Load()
		if cur+int64(n) > int64(r.capacity) {
			return fmt.Errorf("%w: %d users in use, %d requested, limit %d", ErrCapacity, cur, n, r.capacity)
		}
		if r.totalUsers.CompareAndSwap(cur, cur+int64(n)) {
			return nil
		}
	}
}

// ModelCache exposes the registry's shared compiled-model cache (for
// stats reporting and tests).
func (r *Registry) ModelCache() *stream.ModelCache { return r.models }

// SetEngineCache attaches an on-disk compiled-engine cache behind the
// model cache: chains seen in any previous process load their compiled
// engine from disk instead of recompiling, and fresh compilations are
// persisted for the next process. Attach before restoring or creating
// sessions — quantifiers built earlier keep in-memory-only behavior.
func (r *Registry) SetEngineCache(c *enginecache.Cache) {
	r.engineCache = c
	if c != nil {
		r.models.SetEngineStore(c)
	} else {
		r.models.SetEngineStore(nil)
	}
}

// EngineCache returns the attached on-disk engine cache, or nil in
// memory-only mode.
func (r *Registry) EngineCache() *enginecache.Cache { return r.engineCache }

// checkName validates a session name: non-empty, at most 128 bytes, no
// path or whitespace characters (names appear in URL paths).
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("service: session name must not be empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("service: session name longer than 128 bytes")
	}
	if strings.ContainsAny(name, "/ \t\r\n") {
		return fmt.Errorf("service: session name %q contains a slash or whitespace", name)
	}
	return nil
}

// Create builds the configured server and registers it under the
// config's name. The build happens outside the registry lock, so a
// slow plan construction does not block the store; only the final
// insert is serialized, and a name collision discovered then returns
// ErrExists with the freshly built session discarded.
func (r *Registry) Create(cfg *SessionConfig) (*Session, error) {
	if err := checkName(cfg.Name); err != nil {
		return nil, err
	}
	stripe := r.stripe(cfg.Name)
	stripe.mu.RLock()
	_, taken := stripe.sessions[cfg.Name]
	stripe.mu.RUnlock()
	if taken {
		return nil, fmt.Errorf("%w: %q", ErrExists, cfg.Name)
	}
	// Advisory capacity check before the expensive build; the binding
	// check is the CAS reservation below.
	if pop := cfg.population(); r.totalUsers.Load()+int64(pop) > int64(r.capacity) {
		return nil, fmt.Errorf("%w: %d users in use, %d requested, limit %d", ErrCapacity, r.Users(), pop, r.capacity)
	}
	// Bundle refs resolve here, against the active named revision, and
	// the config is rewritten in place to the resolved inline chains.
	// Everything downstream — the build, and crucially the persisted
	// cfgJSON — sees only resolved models, so a crash recovery rebuilds
	// exactly what was created even if a different bundle is active by
	// then.
	if err := cfg.resolveRefs(r.models); err != nil {
		return nil, err
	}
	srv, err := cfg.BuildCached(r.models)
	if err != nil {
		return nil, err
	}
	// The resolved config is serialized for every session, durable or
	// not: restores rebuild from it, and migration ships it with the
	// exported state, so even an ephemeral shard can hand a session off.
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("service: serializing session config: %w", err)
	}
	s := &Session{name: cfg.Name, created: r.now(), srv: srv, now: r.now, sink: &r.decisions, modelRevision: cfg.ModelRevision, cfgJSON: cfgJSON}
	// The session is inserted before its persistence is initialized, so
	// a concurrent create of the same name loses cleanly at the map —
	// never by overwriting the winner's files. Holding stepMu across the
	// initialization keeps any early step from slipping past the
	// journal; a persist failure rolls the insert back.
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	if err := r.reserveUsers(srv.Users()); err != nil {
		return nil, err
	}
	stripe.mu.Lock()
	if _, taken := stripe.sessions[cfg.Name]; taken {
		stripe.mu.Unlock()
		r.totalUsers.Add(-int64(srv.Users()))
		return nil, fmt.Errorf("%w: %q", ErrExists, cfg.Name)
	}
	stripe.sessions[cfg.Name] = s
	// A fresh session under a migrated-away name supersedes the redirect.
	hadTomb := false
	if _, hadTomb = stripe.tombstones[cfg.Name]; hadTomb {
		delete(stripe.tombstones, cfg.Name)
	}
	stripe.mu.Unlock()
	if hadTomb {
		r.removeTombstoneFile(cfg.Name)
	}
	r.pmu.Lock()
	store, every := r.store, r.snapshotEvery
	s.syncMode, s.committer = r.syncMode, r.committer
	r.pmu.Unlock()
	if store != nil {
		if err := s.initPersistenceLocked(store, every); err != nil {
			stripe.mu.Lock()
			owned := stripe.sessions[cfg.Name] == s
			if owned {
				delete(stripe.sessions, cfg.Name)
			}
			stripe.mu.Unlock()
			// Only release capacity and clean up files while the name is
			// still ours: if a concurrent Delete already freed the slot
			// (and the reservation), a re-created session of the same
			// name may own the files by now.
			if owned {
				r.totalUsers.Add(-int64(srv.Users()))
				store.Remove(cfg.Name)
			}
			return nil, err
		}
	}
	return s, nil
}

// Users returns the aggregate declared population across all sessions.
func (r *Registry) Users() int {
	return int(r.totalUsers.Load())
}

// Get returns the named session. A name that was migrated away resolves
// to WrongShardError carrying the new owner's base URL; the tombstone is
// consulted only after the live-session miss, so clustered redirects add
// zero cost to the resident hot path.
func (r *Registry) Get(name string) (*Session, error) {
	stripe := r.stripe(name)
	stripe.mu.RLock()
	s, ok := stripe.sessions[name]
	loc, gone := "", false
	if !ok {
		loc, gone = stripe.tombstones[name]
	}
	stripe.mu.RUnlock()
	if !ok {
		if gone {
			return nil, &WrongShardError{Name: name, Location: loc}
		}
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return s, nil
}

// Delete removes the named session, releasing its population from the
// aggregate capacity and deleting its persisted state. The map removal
// happens first (under the stripe lock alone — taking stepMu under it
// would invert Create's lock order), so the file cleanup races no new
// steps.
func (r *Registry) Delete(name string) error {
	stripe := r.stripe(name)
	stripe.mu.Lock()
	s, ok := stripe.sessions[name]
	if !ok {
		stripe.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(stripe.sessions, name)
	stripe.mu.Unlock()
	r.totalUsers.Add(-int64(s.srv.Users()))
	s.stepMu.Lock()
	err := s.dropPersistenceLocked()
	s.stepMu.Unlock()
	// Disconnect live watchers — their session no longer exists, and a
	// silently idle stream would hide that until a write timeout.
	s.watch.closeAll()
	return err
}

// List returns all sessions sorted by name.
func (r *Registry) List() []*Session {
	var out []*Session
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.RLock()
		for _, s := range st.sessions {
			out = append(out, s)
		}
		st.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of registered sessions.
func (r *Registry) Len() int {
	n := 0
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.RLock()
		n += len(st.sessions)
		st.mu.RUnlock()
	}
	return n
}
