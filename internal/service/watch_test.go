package service

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// openWatch starts one SSE watch request against a live server and
// returns a channel that closes when the stream ends.
func openWatch(t *testing.T, base, session string) (done chan struct{}) {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v2/sessions/"+session+"/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %d", resp.StatusCode)
	}
	done = make(chan struct{})
	go func() {
		defer close(done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
	}()
	return done
}

// TestDeleteDisconnectsWatchers: deleting a session must end its open
// watch streams promptly, not leave them idling until a write timeout.
func TestDeleteDisconnectsWatchers(t *testing.T) {
	api := NewAPI()
	h := api.Handler()
	srv := httptest.NewServer(h)
	defer srv.Close()
	v2Session(t, h, "gone")
	done := openWatch(t, srv.URL, "gone")

	rec := doJSON(t, h, "DELETE", "/v2/sessions/gone", "", nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream still open 5s after session delete")
	}
}

// TestShutdownEndsWatchStreams: an open SSE stream must not hold
// graceful shutdown to its deadline — Server.Run registers
// StopWatchers on Shutdown, the stream ends, the drain completes
// quickly, and the final snapshots run.
func TestShutdownEndsWatchStreams(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewWithOptions("127.0.0.1:0", nil, Options{StateDir: dir, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- srv.Run(ctx, func(a net.Addr) { addrc <- a.String() })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never came up")
	}
	// Create a session and a couple of steps over the wire, then watch.
	body := `{"name":"w","domain":2,"users":3,"seed":3}`
	resp, err := http.Post(base+"/v2/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v2/sessions/w/steps", "application/json", strings.NewReader(`[{"values":[0,1,0],"eps":0.1}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := openWatch(t, base, "w")

	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("graceful shutdown hung behind the watch stream")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v — the watch stream held the drain", elapsed)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("watch stream still open after shutdown")
	}
}
