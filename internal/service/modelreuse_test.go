package service

import (
	"sync"
	"testing"

	"repro/internal/markov"
)

// TestRegistryReusesCompiledModels checks the cross-session sharing:
// two sessions declaring content-identical correlation chains compile
// the model once, and a third session with a new chain compiles exactly
// one more.
func TestRegistryReusesCompiledModels(t *testing.T) {
	reg := NewRegistry()
	chain := markov.Fig7Backward()
	model := ModelConfig{Backward: chain, Forward: chain}
	mk := func(name string) *SessionConfig {
		return &SessionConfig{
			Name:    name,
			Domain:  chain.N(),
			Cohorts: []CohortConfig{{Users: 3, Model: model}},
			Seed:    1,
		}
	}
	s1, err := reg.Create(mk("a"))
	if err != nil {
		t.Fatal(err)
	}
	if st := reg.ModelCache().Stats(); st.Misses != 1 || st.Size != 1 {
		t.Fatalf("after one session: cache %+v, want one compiled model", st)
	}
	s2, err := reg.Create(mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	if st := reg.ModelCache().Stats(); st.Misses != 1 {
		t.Fatalf("second identical session recompiled: cache %+v", st)
	}
	other := markov.Fig7Forward()
	if _, err := reg.Create(&SessionConfig{
		Name:    "c",
		Domain:  other.N(),
		Cohorts: []CohortConfig{{Users: 2, Model: ModelConfig{Backward: other}}},
		Seed:    1,
	}); err != nil {
		t.Fatal(err)
	}
	if st := reg.ModelCache().Stats(); st.Misses != 2 || st.Size != 2 {
		t.Fatalf("after distinct model: cache %+v, want two compiled models", st)
	}

	// The shared engine must leave per-tenant accounting untouched:
	// identical sessions stepped identically report identical leakage.
	for i := 0; i < 4; i++ {
		if _, _, _, err := s1.Collect([]int{0, 1, 0}, 0.1); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := s2.Collect([]int{0, 1, 0}, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	a, err := s1.Server().UserTPL(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Server().UserTPL(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical sessions diverged: TPL %v vs %v", a, b)
	}
}

// TestRegistryModelReuseConcurrent creates sessions over the same chain
// concurrently and steps them in parallel — the engine-shared-across-
// sessions race test (run under -race in CI).
func TestRegistryModelReuseConcurrent(t *testing.T) {
	reg := NewRegistry()
	chain := markov.Fig7Backward()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := reg.Create(&SessionConfig{
				Name:    "sess-" + string(rune('a'+g)),
				Domain:  chain.N(),
				Cohorts: []CohortConfig{{Users: 2, Model: ModelConfig{Backward: chain, Forward: chain}}},
				Seed:    int64(g + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 10; i++ {
				if _, _, _, err := s.Collect([]int{0, 1}, 0.05); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := s.Server().Report(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if st := reg.ModelCache().Stats(); st.Misses != 1 {
		t.Fatalf("8 concurrent identical sessions compiled %d models, want 1 (%+v)", st.Misses, st)
	}
}
