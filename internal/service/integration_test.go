package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/markov"
	"repro/internal/release"
	"repro/internal/report"
	"repro/internal/stream"
)

// postJSON posts one JSON body over a real client connection.
func postJSON(t *testing.T, client *http.Client, url string, body any, out any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, data, err)
		}
	}
}

// getJSON fetches one JSON response.
func getJSON(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("GET %s: decoding %q: %v", url, data, err)
	}
}

// getTables fetches a ?format=jsonl endpoint and parses it back through
// report.ParseJSONLines — the round-trip the wire format promises.
func getTables(t *testing.T, client *http.Client, url string) []*report.Table {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("GET %s: content type %q, want %q", url, ct, ndjsonContentType)
	}
	tables, err := report.ParseJSONLines(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: parsing JSON lines: %v", url, err)
	}
	return tables
}

// TestServedMatchesDirectDrive is the end-to-end acceptance scenario:
// a session with per-user Markov models collects 20 steps — 10 with
// explicit budgets, 10 from a quantified plan — through the HTTP API,
// and its report must match the identical scenario driven directly
// through stream.Server. Table responses must parse back through
// report.ParseJSONLines.
func TestServedMatchesDirectDrive(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	weak, err := pb.Mix(0.5) // a second, weaker correlation class
	if err != nil {
		t.Fatal(err)
	}
	users := []ModelConfig{
		{Backward: pb, Forward: pf},
		{Backward: weak, Forward: pf},
		{Backward: pb},
		{}, // traditional DP adversary
	}

	ts := httptest.NewServer(NewAPI().Handler())
	defer ts.Close()
	client := ts.Client()

	const (
		name        = "acceptance"
		explicitEps = 0.1
		alpha       = 1.0
		horizon     = 20
		steps       = 20
	)
	cfg := SessionConfig{
		Name:   name,
		Domain: pb.N(),
		Models: users,
		Plan:   &PlanConfig{Kind: "quantified", Alpha: alpha, Horizon: horizon, Model: &users[0]},
	}
	var created Summary
	postJSON(t, client, ts.URL+"/v1/sessions", cfg, &created)
	if created.Cohorts != 4 || created.Users != 4 {
		t.Fatalf("summary %+v: want 4 users in 4 cohorts", created)
	}

	base := ts.URL + "/v1/sessions/" + name
	values := [][]int{{0, 1, 0, 1}, {1, 1, 0, 0}, {0, 0, 0, 1}, {1, 0, 1, 0}}
	for i := 0; i < steps; i++ {
		req := map[string]any{"values": values[i%len(values)]}
		if i < steps/2 {
			req["eps"] = explicitEps
		}
		var step stepResponse
		postJSON(t, client, base+"/steps", req, &step)
		if step.T != i+1 {
			t.Fatalf("step %d landed on t=%d", i, step.T)
		}
	}

	// The same scenario, driven directly through the library.
	models := make([]stream.AdversaryModel, len(users))
	for i, m := range users {
		models[i] = stream.AdversaryModel{Backward: m.Backward, Forward: m.Forward}
	}
	direct, err := stream.NewServer(pb.N(), len(models), models, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := release.Quantified(pb, pf, alpha, horizon)
	if err != nil {
		t.Fatal(err)
	}
	direct.SetPlan(plan)
	for i := 0; i < steps; i++ {
		vals := values[i%len(values)]
		if i < steps/2 {
			_, err = direct.Collect(vals, explicitEps)
		} else {
			_, err = direct.CollectPlanned(vals)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	want, err := direct.Report()
	if err != nil {
		t.Fatal(err)
	}

	var got reportResponse
	getJSON(t, client, base+"/report", &got)
	if got.T != steps {
		t.Fatalf("report T = %d, want %d", got.T, steps)
	}
	if got.EventLevelAlpha != want.EventLevelAlpha {
		t.Errorf("EventLevelAlpha = %v, want %v", got.EventLevelAlpha, want.EventLevelAlpha)
	}
	if got.UserLevel != want.UserLevel {
		t.Errorf("UserLevel = %v, want %v", got.UserLevel, want.UserLevel)
	}
	if got.WorstUser != want.WorstUser || got.NominalEventLevel != want.NominalEventLevel {
		t.Errorf("report %+v, want %+v", got, *want)
	}
	// The wire format is snake_case, owned by the service layer.
	resp, err := client.Get(base + "/report")
	if err != nil {
		t.Fatal(err)
	}
	rawReport, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"t"`, `"event_level_alpha"`, `"worst_user"`, `"user_level"`, `"nominal_event_level"`} {
		if !bytes.Contains(rawReport, []byte(key)) {
			t.Errorf("report body %s missing key %s", rawReport, key)
		}
	}

	// Per-user TPL series through the API match the direct drive.
	for u := range users {
		var series struct {
			User int       `json:"user"`
			TPL  []float64 `json:"tpl"`
		}
		getJSON(t, client, fmt.Sprintf("%s/tpl?user=%d", base, u), &series)
		wantSeries, err := direct.UserTPLSeries(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(series.TPL) != len(wantSeries) {
			t.Fatalf("user %d: series length %d, want %d", u, len(series.TPL), len(wantSeries))
		}
		for i := range wantSeries {
			if series.TPL[i] != wantSeries[i] {
				t.Errorf("user %d TPL[%d] = %v, want %v", u, i, series.TPL[i], wantSeries[i])
			}
		}
	}

	// JSON-lines table responses round-trip through ParseJSONLines.
	reportTables := getTables(t, client, base+"/report?format=jsonl")
	if len(reportTables) != 1 {
		t.Fatalf("report tables: %d, want 1", len(reportTables))
	}
	if wantTable := want.Table(); reportTables[0].Title != wantTable.Title {
		t.Errorf("report table title %q, want %q", reportTables[0].Title, wantTable.Title)
	}
	if len(reportTables[0].Rows) != 2 {
		t.Fatalf("report table rows: %d, want 2", len(reportTables[0].Rows))
	}
	if cell := reportTables[0].Rows[0][2]; cell != fmt.Sprintf("%.6f", want.EventLevelAlpha) {
		t.Errorf("report table event-level cell %q, want %.6f", cell, want.EventLevelAlpha)
	}

	tplTables := getTables(t, client, base+"/tpl?user=0&format=jsonl")
	if len(tplTables) != 1 || len(tplTables[0].Rows) != steps {
		t.Fatalf("tpl table: %d tables, want 1 with %d rows", len(tplTables), steps)
	}
	wantSeries, err := direct.UserTPLSeries(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tplTables[0].Rows {
		if row[0] != strconv.Itoa(i+1) || row[1] != fmt.Sprintf("%.6f", wantSeries[i]) {
			t.Errorf("tpl table row %d = %v, want [%d %.6f]", i, row, i+1, wantSeries[i])
		}
	}

	weventTables := getTables(t, client, base+"/wevent?w=3&format=jsonl")
	wantW, wantWU, err := direct.MaxWEvent(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(weventTables) != 1 || len(weventTables[0].Rows) != 1 {
		t.Fatalf("wevent table shape: %+v", weventTables)
	}
	if row := weventTables[0].Rows[0]; row[1] != strconv.Itoa(wantWU) || row[2] != fmt.Sprintf("%.6f", wantW) {
		t.Errorf("wevent row %v, want user %d leakage %.6f", row, wantWU, wantW)
	}
}

// TestConcurrentSessions hammers the service with concurrent tenants:
// each goroutine creates its own session, steps it, and reads it back
// while others do the same (run under -race in CI).
func TestConcurrentSessions(t *testing.T) {
	ts := httptest.NewServer(NewAPI().Handler())
	defer ts.Close()
	client := ts.Client()
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()

	const tenants = 8
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", g)
			cfg := SessionConfig{
				Name:   name,
				Domain: 2,
				Cohorts: []CohortConfig{
					{Users: 50, Model: ModelConfig{Backward: pb, Forward: pf}},
					{Users: 50, Model: ModelConfig{}},
				},
			}
			postJSON(t, client, ts.URL+"/v1/sessions", cfg, nil)
			base := ts.URL + "/v1/sessions/" + name
			values := make([]int, 100)
			for i := 0; i < 10; i++ {
				postJSON(t, client, base+"/steps", map[string]any{"values": values, "eps": 0.1}, nil)
				var rep reportResponse
				getJSON(t, client, base+"/report", &rep)
				if rep.T != i+1 {
					t.Errorf("%s: report T = %d, want %d", name, rep.T, i+1)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var listed struct {
		Sessions []Summary `json:"sessions"`
	}
	getJSON(t, client, ts.URL+"/v1/sessions", &listed)
	if len(listed.Sessions) != tenants {
		t.Fatalf("%d sessions, want %d", len(listed.Sessions), tenants)
	}
	for _, s := range listed.Sessions {
		if s.T != 10 || s.Cohorts != 2 || s.Users != 100 {
			t.Errorf("session %+v: want t=10, 2 cohorts, 100 users", s)
		}
	}
}
