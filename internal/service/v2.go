package service

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/stream"
)

// The v2 wire contract (see DESIGN.md §7): batched step ingestion (a
// JSON array or an NDJSON stream), idempotency keys for safe retries,
// cursor pagination on the release history and TPL series, problem+json
// errors everywhere, and an SSE watch stream for live leakage.

// maxBatchSteps bounds one ingestion request. 4096 steps of the
// largest domain is within the body ceiling; anything bigger should be
// split — the client SDK's BatchWriter does this automatically.
const maxBatchSteps = 4096

// maxIdemKeyLen bounds the Idempotency-Key header (the key is stored
// per batch in the journal and snapshots).
const maxIdemKeyLen = 256

// Pagination bounds: a page defaults to defaultPageLimit items and is
// clamped to maxPageLimit (a published-history item carries a whole
// domain-sized histogram).
const (
	defaultPageLimit = 100
	maxPageLimit     = 500
)

// wireStep is one element of a v2 steps request: values or counts,
// with an optional explicit budget (absent = draw from the plan).
type wireStep struct {
	Values []int    `json:"values,omitempty"`
	Counts []int    `json:"counts,omitempty"`
	Eps    *float64 `json:"eps,omitempty"`
}

// batchResponse is the v2 steps response.
type batchResponse struct {
	Results  []stepResponse `json:"results"`
	Count    int            `json:"count"`
	FirstT   int            `json:"first_t"`
	LastT    int            `json:"last_t"`
	Replayed bool           `json:"replayed,omitempty"`
}

// readBatch decodes a v2 steps body: an NDJSON stream when the request
// says so (one step object per line — the high-throughput shape), a
// JSON array otherwise. Unknown fields and trailing garbage are
// rejected; the batch size is bounded.
//
// NDJSON bodies decode into the request's arena (arena.go): the body
// buffer, the step slice, and every decoded int array come from
// pooled slabs, so the steady-state hot path allocates nothing. Lines
// matching the plain step shape take a hand-rolled scanner
// (fastpath.go) an order of magnitude faster than reflective
// decoding; the first unrecognized line drops the remainder of the
// body to the strict encoding/json path, so accepted inputs and error
// behavior are identical either way.
func readBatch(w http.ResponseWriter, r *http.Request, a *batchArena) ([]stream.BatchStep, error) {
	ct := r.Header.Get("Content-Type")
	mt, _, _ := mime.ParseMediaType(ct)
	var steps []stream.BatchStep
	if mt == ndjsonContentType {
		body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
		// One read, zero-copy line slicing: per-line buffered reads would
		// memmove every 100k-value line twice.
		raw, err := a.readBody(body, r.ContentLength)
		if err != nil {
			return nil, fmt.Errorf("service: reading NDJSON body: %w", err)
		}
		return a.decodeNDJSONArena(raw)
	}
	var wire []wireStep
	if err := decodeBody(w, r, &wire); err != nil {
		return nil, err
	}
	if len(wire) > maxBatchSteps {
		return nil, fmt.Errorf("service: batch exceeds %d steps", maxBatchSteps)
	}
	steps = make([]stream.BatchStep, len(wire))
	for i, ws := range wire {
		steps[i] = stream.BatchStep(ws)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("service: empty batch")
	}
	return steps, nil
}

// decodeNDJSONSlow is the strict NDJSON decoder the fast path falls
// back to: a stream of concatenated JSON step objects with unknown
// fields rejected.
func decodeNDJSONSlow(r io.Reader, steps *[]stream.BatchStep) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	for {
		var ws wireStep
		if err := dec.Decode(&ws); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("service: decoding NDJSON step %d: %w", len(*steps)+1, err)
		}
		if len(*steps) >= maxBatchSteps {
			return fmt.Errorf("service: batch exceeds %d steps", maxBatchSteps)
		}
		*steps = append(*steps, stream.BatchStep(ws))
	}
}

// postStepsV2 ingests a batch of steps, deduplicated by the optional
// Idempotency-Key header. The batch is atomic: it lands whole or not
// at all, so a retry after any failure is safe when keyed.
func (a *API) postStepsV2(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if len(key) > maxIdemKeyLen {
		writeError(w, fmt.Errorf("service: Idempotency-Key longer than %d bytes", maxIdemKeyLen))
		return
	}
	// The arena owns every slab this request decodes into and encodes
	// out of; CollectBatch borrows the steps only for the duration of
	// the call, so releasing after the response is written is safe.
	arena := getArena()
	defer arena.release()
	steps, err := readBatch(w, r, arena)
	if err != nil {
		writeError(w, err)
		return
	}
	results, replayed, err := s.CollectBatch(key, steps)
	if err != nil {
		writeError(w, err)
		return
	}
	if replayed {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	// Hand-rolled encoding (byte-identical to writeJSON on a
	// batchResponse — encode_test.go holds the equivalence): the
	// reflective encoder was ~a quarter of the ingest hot path.
	// Prefer: return=minimal (RFC 7240) skips the per-step echo
	// entirely — the high-rate ingest shape.
	var body []byte
	if preferReturnMinimal(r.Header) {
		w.Header().Set("Preference-Applied", "return=minimal")
		body = arena.encodeMinimalBatchResponse(results, replayed)
	} else {
		body = arena.encodeBatchResponse(results, replayed)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// preferReturnMinimal reports whether the request opted into the
// minimal batch acknowledgement via an RFC 7240 Prefer header.
func preferReturnMinimal(h http.Header) bool {
	for _, v := range h.Values("Prefer") {
		for _, tok := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(tok), "return=minimal") {
				return true
			}
		}
	}
	return false
}

// encodeCursor renders an opaque pagination cursor for "resume at step
// next".
func encodeCursor(next int) string {
	return base64.RawURLEncoding.EncodeToString([]byte("t:" + strconv.Itoa(next)))
}

// decodeCursor parses a cursor back into a 1-based step index.
func decodeCursor(s string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("service: malformed cursor")
	}
	rest, ok := strings.CutPrefix(string(raw), "t:")
	if !ok {
		return 0, fmt.Errorf("service: malformed cursor")
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("service: malformed cursor")
	}
	return n, nil
}

// pageParams parses ?cursor= and ?limit=.
func pageParams(r *http.Request) (from, limit int, err error) {
	from, limit = 1, defaultPageLimit
	if raw := r.URL.Query().Get("cursor"); raw != "" {
		if from, err = decodeCursor(raw); err != nil {
			return 0, 0, err
		}
	}
	if raw := r.URL.Query().Get("limit"); raw != "" {
		if limit, err = strconv.Atoi(raw); err != nil || limit < 1 {
			return 0, 0, fmt.Errorf("service: limit must be a positive integer")
		}
		if limit > maxPageLimit {
			limit = maxPageLimit
		}
	}
	return from, limit, nil
}

// publishedItem is one page element of GET /v2/.../published.
type publishedItem struct {
	T         int       `json:"t"`
	Eps       float64   `json:"eps"`
	Published []float64 `json:"published"`
}

// getPublishedV2 pages through the release history oldest-first.
// next_cursor is present exactly when more steps were already published
// past the page; a dashboard polls with the last cursor to tail the
// stream (or uses /watch for push).
func (a *API) getPublishedV2(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	from, limit, err := pageParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	srv := s.Server()
	// T first: anything <= T is fully readable even while new steps land.
	T := srv.T()
	items := []publishedItem{}
	if from <= T {
		to := min(from+limit-1, T)
		eps, hists, err := srv.PublishedRange(from, to)
		if err != nil {
			writeErrorStatus(w, http.StatusInternalServerError, err)
			return
		}
		items = make([]publishedItem, len(eps))
		for i := range eps {
			items[i] = publishedItem{T: from + i, Eps: eps[i], Published: hists[i]}
		}
	}
	resp := map[string]any{"t": T, "items": items}
	if next := from + len(items); next <= T {
		resp["next_cursor"] = encodeCursor(next)
	}
	writeJSON(w, http.StatusOK, resp)
}

// tplItem is one page element of GET /v2/.../tpl.
type tplItem struct {
	T   int     `json:"t"`
	TPL float64 `json:"tpl"`
}

// getTPLV2 pages through one user's TPL series oldest-first.
func (a *API) getTPLV2(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	user, err := intQuery(r, "user")
	if err != nil {
		writeError(w, err)
		return
	}
	from, limit, err := pageParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	srv := s.Server()
	T := srv.T()
	var series []float64
	if from <= T {
		to := min(from+limit-1, T)
		if series, err = srv.UserTPLRange(user, from, to); err != nil {
			writeError(w, err)
			return
		}
	} else if _, err := srv.CohortOf(user); err != nil {
		// An empty page must still validate the user.
		writeError(w, err)
		return
	}
	items := make([]tplItem, len(series))
	for i, v := range series {
		items[i] = tplItem{T: from + i, TPL: v}
	}
	resp := map[string]any{"user": user, "t": T, "items": items}
	if next := from + len(items); next <= T {
		resp["next_cursor"] = encodeCursor(next)
	}
	writeJSON(w, http.StatusOK, resp)
}

// watchSession streams SSE "step" frames: one per published step, each
// carrying the population-worst TPL/BPL/FPL at that step. ?from=T (or
// a Last-Event-ID header on reconnect) replays history after step T
// before going live; the default is live-only. Frames a slow consumer
// cannot drain are not buffered indefinitely — the stream is closed
// and the client reconnects with Last-Event-ID.
func (a *API) watchSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErrorStatus(w, http.StatusInternalServerError, fmt.Errorf("service: response writer does not support streaming"))
		return
	}
	srv := s.Server()
	from := srv.T()
	if raw := r.URL.Query().Get("from"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("service: from must be a non-negative integer"))
			return
		}
		from = n
	}
	// Last-Event-ID wins over ?from=: an EventSource reconnect reuses
	// the original URL (query string included) and supplies the header,
	// and must resume, not replay the whole history again.
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("service: malformed Last-Event-ID %q", raw))
			return
		}
		from = n
	}

	// Subscribe before the catch-up reads so no step can fall between
	// catch-up and live; duplicates are filtered by frame id below.
	ch, cancel := s.watch.subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	writeFrame := func(ev watchEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: step\nid: %d\ndata: %s\n\n", ev.T, data); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}

	last := from
	for t := from + 1; t <= srv.T(); t++ {
		ev, err := s.watchFrameAt(t)
		if err != nil {
			return
		}
		if err := writeFrame(ev); err != nil {
			return
		}
		last = t
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-a.watchStop:
			// Graceful shutdown: end the stream now, or the open SSE
			// connection would hold http.Server.Shutdown to its deadline
			// and skip the registry's final snapshots.
			return
		case ev, ok := <-ch:
			if !ok {
				return // hub disconnected us (overflow or session delete); client reconnects
			}
			if ev.T <= last {
				continue
			}
			if err := writeFrame(ev); err != nil {
				return
			}
			last = ev.T
		}
	}
}
