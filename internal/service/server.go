package service

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/enginecache"
	"repro/internal/persist"
)

// shutdownGrace is how long Run waits for in-flight requests to drain
// after its context is cancelled.
const shutdownGrace = 10 * time.Second

// Server is the long-running HTTP face of the release service: an API
// plus the net/http plumbing for serving it and shutting it down
// gracefully.
type Server struct {
	api  *API
	http *http.Server
	log  *log.Logger
}

// Options configures the optional durability of a server.
type Options struct {
	// StateDir, when non-empty, makes the registry durable: session
	// state is snapshotted and journaled there, and every session found
	// there is restored at construction.
	StateDir string
	// SnapshotEvery is the snapshot coalescing interval in steps
	// (<= 0 selects the default).
	SnapshotEvery int
	// JournalSync selects the journal durability mode ("none", "group"
	// or "step"; empty selects "group" — power-loss durability at
	// group-commit cost). Ignored without a StateDir.
	JournalSync string
	// JournalWindow bounds how long a group-commit append may wait for
	// companions (<= 0 selects the default). Only meaningful with
	// JournalSync "group".
	JournalWindow time.Duration
	// EngineCacheDir, when non-empty, enables the on-disk compiled-
	// engine cache: adversary models whose chain content was seen by
	// any previous process load their compiled leakage engine from disk
	// instead of recompiling. Safe to share between the state dir and
	// across restarts; a missing or corrupt cache only costs compiles.
	EngineCacheDir string
}

// New creates a server for the given listen address. logger may be nil
// to discard serving logs.
func New(addr string, logger *log.Logger) *Server {
	s, err := NewWithOptions(addr, logger, Options{})
	if err != nil {
		// Unreachable: only durable construction can fail.
		panic(err)
	}
	return s
}

// NewWithOptions is New plus durability: with a state directory it
// opens the snapshot store, enables persistence, and restores every
// session found on disk before the listener comes up — a restored
// session's leakage series continues exactly where the previous
// process left it. Sessions that fail to restore are logged and
// skipped (their files stay on disk); only a store that cannot be
// opened at all fails construction.
func NewWithOptions(addr string, logger *log.Logger, opts Options) (*Server, error) {
	api := NewAPI()
	// The engine cache attaches before any restore below, so restored
	// sessions warm-start their compiled models from disk too.
	if opts.EngineCacheDir != "" {
		ec, err := enginecache.Open(opts.EngineCacheDir)
		if err != nil {
			return nil, err
		}
		api.Registry().SetEngineCache(ec)
		if logger != nil {
			logger.Printf("tplserved: engine cache at %s (%d entries)", opts.EngineCacheDir, ec.Stats().Entries)
		}
	}
	if opts.StateDir != "" {
		store, err := persist.NewStore(opts.StateDir)
		if err != nil {
			return nil, err
		}
		syncMode := JournalSyncMode(opts.JournalSync)
		if syncMode == "" {
			syncMode = JournalSyncGroup
		}
		if err := api.Registry().SetJournalSync(syncMode, opts.JournalWindow); err != nil {
			return nil, err
		}
		if err := api.Registry().EnablePersistence(store, opts.SnapshotEvery); err != nil {
			return nil, err
		}
		restored, failed := api.Registry().RestoreAll()
		if logger != nil {
			logger.Printf("tplserved: state dir %s: restored %d session(s)", opts.StateDir, len(restored))
			for name, err := range failed {
				logger.Printf("tplserved: session %q not restored: %v", name, err)
			}
		}
	}
	s := &Server{
		api: api,
		http: &http.Server{
			Addr:              addr,
			Handler:           api.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
			// Generous but bounded: a million-user step uploads in well
			// under a second, so five minutes accommodates any honest
			// client while a byte-trickling one cannot pin a handler
			// goroutine forever or stall graceful shutdown.
			ReadTimeout:  5 * time.Minute,
			WriteTimeout: 5 * time.Minute,
			IdleTimeout:  2 * time.Minute,
		},
		log: logger,
	}
	if logger != nil {
		s.http.ErrorLog = logger
	}
	// SSE watch streams end when Shutdown begins — an open watch held to
	// the shutdown deadline would abort the drain and skip the final
	// snapshots below.
	s.http.RegisterOnShutdown(api.StopWatchers)
	return s, nil
}

// API returns the underlying API (and through it the registry).
func (s *Server) API() *API { return s.api }

// Run listens on the configured address and serves until ctx is
// cancelled, then drains in-flight requests for up to shutdownGrace.
// ready, when non-nil, is called with the bound address once the
// listener is up (tests and callers using ":0" learn the real port).
func (s *Server) Run(ctx context.Context, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	s.logf("tplserved: listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve never returns nil; surface whatever killed it.
		return err
	case <-ctx.Done():
	}
	s.logf("tplserved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := s.http.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Requests have drained; take one final snapshot per session so a
	// clean restart replays no journal at all.
	if err := s.api.Registry().Close(); err != nil {
		s.logf("tplserved: finalizing persisted state: %v", err)
		return err
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}
