package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/persist"
)

// Cross-shard session migration. A session is a portable value — the
// snapshot body (config + full server state + idempotency memory) is
// everything a peer needs to serve it, and compiled engines rebind by
// content hash through the shared on-disk engine cache, so migration
// never recompiles a chain. The protocol is push-based and source-
// driven:
//
//  1. The source freezes the session under its stepMu (no step can land
//     mid-export) and encodes the same envelope a durable snapshot uses.
//  2. It POSTs the envelope to the target's /v2/sessions/import; the
//     target rebuilds and registers the session, writing its own initial
//     snapshot before answering.
//  3. Only after the target acknowledges does the source retire: the
//     session leaves the registry, its files are deleted, and a durable
//     tombstone records the new owner so every later request answers 421
//     wrong_shard with the redirect.
//
// A failure at any point before 3 leaves the source authoritative and
// untouched (the target may hold a dead copy under a name it will refuse
// to duplicate — re-migrating after deleting it there is the recovery).
// In-flight writers that raced the hand-off and still hold the session
// pointer hit the retired flag under stepMu and are refused with the
// same 421, so no acknowledged step can ever land on the orphaned copy.

// migratePushTimeout bounds the state push when the caller's context
// carries no earlier deadline.
const migratePushTimeout = 2 * time.Minute

// checkMigrateTarget validates a migration target base URL.
func checkMigrateTarget(target string) (string, error) {
	target = strings.TrimRight(strings.TrimSpace(target), "/")
	u, err := url.Parse(target)
	if err != nil {
		return "", fmt.Errorf("service: migrate target %q: %w", target, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("service: migrate target %q: want an absolute http(s) base URL", target)
	}
	return target, nil
}

// Migrate hands the named session off to the shard at target (a base
// URL) and returns the location recorded in the tombstone. The caller's
// context bounds the state push.
func (r *Registry) Migrate(ctx context.Context, name, target string) (string, error) {
	s, err := r.Get(name) // an already-migrated name propagates its 421 redirect
	if err != nil {
		return "", err
	}
	target, err = checkMigrateTarget(target)
	if err != nil {
		return "", err
	}
	s.stepMu.Lock()
	if s.retired {
		loc := s.retiredTo
		s.stepMu.Unlock()
		return "", &WrongShardError{Name: name, Location: loc}
	}
	body, err := s.encodeStateLocked(s.srv.Snapshot())
	if err != nil {
		s.stepMu.Unlock()
		return "", err
	}
	if err := pushSessionState(ctx, target, body); err != nil {
		s.stepMu.Unlock()
		return "", fmt.Errorf("%w: %v", ErrMigrateFailed, err)
	}
	// The target acknowledged: it owns the state now. Everything below
	// only retires the local copy — failures are reported but cannot
	// un-migrate.
	s.retired = true
	s.retiredTo = target
	dropErr := s.dropPersistenceLocked()
	s.stepMu.Unlock()
	stripe := r.stripe(name)
	stripe.mu.Lock()
	owned := stripe.sessions[name] == s
	if owned {
		delete(stripe.sessions, name)
		stripe.tombstones[name] = target
	}
	stripe.mu.Unlock()
	if owned {
		// A concurrent Delete that won the map race already released the
		// capacity (and wants no redirect left behind).
		r.totalUsers.Add(-int64(s.srv.Users()))
		r.saveTombstoneFile(name, target)
	}
	s.watch.closeAll()
	if dropErr != nil {
		return target, fmt.Errorf("service: migrated %q to %s but dropping local files failed: %w", name, target, dropErr)
	}
	return target, nil
}

// pushSessionState POSTs one exported session (wrapped in the same
// checksummed envelope snapshots use) to the target's import endpoint.
func pushSessionState(ctx context.Context, target string, body []byte) error {
	var buf bytes.Buffer
	if err := persist.EncodeEnvelope(&buf, sessionSchemaVersion, body); err != nil {
		return err
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, migratePushTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v2/sessions/import", &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("pushing state to %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		slurp, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var p Problem
		if json.Unmarshal(slurp, &p) == nil && p.Code != "" {
			return fmt.Errorf("target %s answered %d %s: %s", target, resp.StatusCode, p.Code, p.Detail)
		}
		return fmt.Errorf("target %s answered status %d", target, resp.StatusCode)
	}
	return nil
}

// ImportSession registers a session pushed by a migrating peer. The
// body is the snapshot-envelope payload; version is the envelope's
// schema version. The imported session writes its own initial snapshot
// (durable mode) before this returns, so the acknowledgment the source
// retires on implies the state is safe here.
func (r *Registry) ImportSession(version uint32, body []byte) (*Session, error) {
	st, cfg, srv, err := r.decodeSessionState(version, body)
	if err != nil {
		return nil, err
	}
	if err := checkName(cfg.Name); err != nil {
		return nil, err
	}
	name := cfg.Name
	stripe := r.stripe(name)
	stripe.mu.RLock()
	_, taken := stripe.sessions[name]
	stripe.mu.RUnlock()
	if taken {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	r.pmu.Lock()
	store, every, mode, committer := r.store, r.snapshotEvery, r.syncMode, r.committer
	r.pmu.Unlock()
	s := &Session{
		name:          name,
		created:       st.Created,
		srv:           srv,
		now:           r.now,
		sink:          &r.decisions,
		modelRevision: cfg.ModelRevision,
		cfgJSON:       st.ConfigJSON,
		syncMode:      mode,
		committer:     committer,
	}
	// The idempotency memory travels with the session: a client retrying
	// a batch across the migration replays instead of double-applying.
	for _, rec := range st.Idem {
		if rec.FirstT >= 1 && rec.lastT() <= srv.T() {
			s.idem.put(rec)
		}
	}
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	if err := r.reserveUsers(srv.Users()); err != nil {
		return nil, err
	}
	stripe.mu.Lock()
	if _, taken := stripe.sessions[name]; taken {
		stripe.mu.Unlock()
		r.totalUsers.Add(-int64(srv.Users()))
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	stripe.sessions[name] = s
	// A session migrating back under a previously handed-off name
	// supersedes the old redirect.
	hadTomb := false
	if _, hadTomb = stripe.tombstones[name]; hadTomb {
		delete(stripe.tombstones, name)
	}
	stripe.mu.Unlock()
	if hadTomb {
		r.removeTombstoneFile(name)
	}
	if store != nil {
		if err := s.initPersistenceLocked(store, every); err != nil {
			stripe.mu.Lock()
			owned := stripe.sessions[name] == s
			if owned {
				delete(stripe.sessions, name)
			}
			stripe.mu.Unlock()
			if owned {
				r.totalUsers.Add(-int64(srv.Users()))
				store.Remove(name)
			}
			return nil, err
		}
	}
	return s, nil
}

// TombstoneLocation reports the redirect recorded for a migrated-away
// session name ("" , false when none).
func (r *Registry) TombstoneLocation(name string) (string, bool) {
	stripe := r.stripe(name)
	stripe.mu.RLock()
	loc, ok := stripe.tombstones[name]
	stripe.mu.RUnlock()
	return loc, ok
}

// saveTombstoneFile persists a redirect (durable mode only; best-effort
// — the in-memory tombstone already answers until the next restart).
func (r *Registry) saveTombstoneFile(name, location string) {
	if store := r.Store(); store != nil {
		_ = store.SaveTombstone(name, location)
	}
}

// removeTombstoneFile deletes a persisted redirect.
func (r *Registry) removeTombstoneFile(name string) {
	if store := r.Store(); store != nil {
		_ = store.RemoveTombstone(name)
	}
}
