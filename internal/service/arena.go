package service

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"

	"repro/internal/stream"
)

// The ingest arena. Steady-state batch ingestion must not allocate:
// at hundreds of thousands of steps per second, per-step garbage —
// body buffers, step slices, decoded int arrays, eps boxes, response
// bytes — turns into GC pressure that dwarfs the accounting itself.
// Every v2 steps request therefore borrows one batchArena from a
// sync.Pool, decodes into its slabs, encodes its response out of its
// scratch buffer, and returns it when the response is written.
//
// The safety contract is strict and test-enforced (fuzz_test.go):
//
//   - An arena is owned by exactly one request from get to release;
//     nothing decoded into it may outlive the request. This holds
//     because stream.CollectBatch borrows the step slices only for the
//     duration of the call (histograms are dead once a step is
//     applied; published outputs are freshly allocated by the noise
//     mechanisms) and the idempotency layer stores digests and step
//     spans, never the request's slices.
//   - release truncates and clears every slab, so a recycled arena can
//     never leak one batch's bytes into the next — not through stale
//     lengths, not through aliased BatchStep slices.
//   - Oversized slabs (a values-mode batch can decode to tens of MB of
//     ints) are dropped rather than pooled, bounding the pool's
//     steady-state memory at a few MB per concurrent request. The
//     at-scale counts shape stays fully pooled.

const (
	// maxPooledBody bounds the recycled raw-body buffer (counts-mode
	// bodies are a few KB; values-mode bodies up to 256 MiB are not
	// worth pinning).
	maxPooledBody = 1 << 20
	// maxPooledInts bounds the recycled decode slab in ints (1 MiB).
	maxPooledInts = 1 << 17
	// maxPooledResp bounds the recycled response buffer.
	maxPooledResp = 1 << 20
)

// batchArena holds the per-request scratch memory of one v2 steps
// ingestion: the raw body, the decoded steps, the int slab their
// values/counts slices are carved from, the eps slab their budget
// pointers point into, and the response encoding buffer.
type batchArena struct {
	body  []byte
	steps []stream.BatchStep
	ints  []int
	eps   []float64
	resp  []byte
	// epsTok memoizes the last eps number token parsed by the fast
	// path and its value: a stream charging the same budget step after
	// step repeats the identical literal, so the common batch parses
	// (and allocates the strconv string for) it once, not per step. The
	// token bytes are owned by the arena, and the mapping is pure
	// content → value, so the memo stays valid across recycled requests
	// and never needs resetting.
	epsTok    [24]byte
	epsTokLen int
	epsTokVal float64
}

var arenaPool = sync.Pool{New: func() any { return new(batchArena) }}

// getArena borrows an arena from the pool.
func getArena() *batchArena { return arenaPool.Get().(*batchArena) }

// release clears the arena and returns it to the pool. Step entries
// are zeroed before truncation so no pooled BatchStep keeps a decoded
// slice (and its backing bytes) alive across requests.
//
//tplvet:hotpath
func (a *batchArena) release() {
	for i := range a.steps {
		a.steps[i] = stream.BatchStep{}
	}
	a.steps = a.steps[:0]
	a.body = a.body[:0]
	a.ints = a.ints[:0]
	a.eps = a.eps[:0]
	a.resp = a.resp[:0]
	if cap(a.body) > maxPooledBody {
		a.body = nil
	}
	if cap(a.ints) > maxPooledInts {
		a.ints = nil
	}
	if cap(a.resp) > maxPooledResp {
		a.resp = nil
	}
	arenaPool.Put(a)
}

// readBody reads r to EOF into the arena's recycled body buffer.
// sizeHint (the client-claimed Content-Length) seeds the capacity,
// capped at maxPooledBody — the header is attacker-controlled, so
// pre-allocating the full body ceiling for an idle connection would be
// a free memory-exhaustion lever; past the cap the buffer grows with
// bytes actually received.
//
//tplvet:hotpath
func (a *batchArena) readBody(r io.Reader, sizeHint int64) ([]byte, error) {
	buf := a.body[:0]
	if n := min(sizeHint, maxPooledBody); n > 0 && int(n)+1 > cap(buf) {
		buf = make([]byte, 0, n+1)
	}
	for {
		if len(buf) == cap(buf) {
			// Grow 4x, not append's 1.25x: past the header-seeded cap the
			// buffer only grows in response to bytes actually received, so
			// the factor is a copy-cost knob, not a DoS surface — and
			// quadrupling keeps total re-copying under a third of the body
			// instead of several times it.
			grown := make([]byte, len(buf), max(4096, 4*cap(buf)))
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			a.body = buf
			return buf, nil
		}
		if err != nil {
			a.body = buf
			return nil, err
		}
	}
}

// grabEps boxes one explicit budget in the eps slab and returns its
// address. Slab growth may move earlier entries to a new backing
// array; already-handed-out pointers keep reading the old (immutable)
// values, so they stay correct.
//
//tplvet:hotpath
func (a *batchArena) grabEps(v float64) *float64 {
	if cap(a.eps) == 0 {
		a.eps = make([]float64, 0, 64)
	}
	a.eps = append(a.eps, v)
	return &a.eps[len(a.eps)-1]
}

// appendJSONFloat appends v exactly as encoding/json renders a float64
// (shortest round-trip form, 'e' only for very small/large magnitudes,
// exponent without a leading zero) — the hand-rolled batch response
// must be byte-identical to what the reflective encoder produced.
//
//tplvet:hotpath
func appendJSONFloat(b []byte, v float64) []byte {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, v, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// encodeBatchResponse renders the v2 steps response into the arena's
// recycled buffer, byte-identical to encoding/json marshaling the
// batchResponse struct (including the trailing newline json.Encoder
// emits). Reflection and per-field allocation were ~a quarter of the
// ingest hot path; this is a flat append loop.
//
//tplvet:hotpath
func (a *batchArena) encodeBatchResponse(results []stream.StepResult, replayed bool) []byte {
	b := a.resp[:0]
	b = append(b, `{"results":[`...)
	// Streams overwhelmingly charge the same budget step after step;
	// memoize the last eps rendering so the common batch formats it
	// once, not 96 times. 32 bytes covers any float rendering, so the
	// memo never regrows.
	epsMemo := make([]byte, 0, 32)
	epsMemoFor := math.NaN()
	for i, r := range results {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"t":`...)
		b = strconv.AppendInt(b, int64(r.T), 10)
		b = append(b, `,"eps":`...)
		if r.Eps == epsMemoFor {
			b = append(b, epsMemo...)
		} else {
			mark := len(b)
			b = appendJSONFloat(b, r.Eps)
			epsMemo, epsMemoFor = append(epsMemo[:0], b[mark:]...), r.Eps
		}
		if r.Planned {
			b = append(b, `,"planned":true,"published":[`...)
		} else {
			b = append(b, `,"planned":false,"published":[`...)
		}
		for j, v := range r.Published {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, v)
		}
		b = append(b, `]}`...)
	}
	b = append(b, `],"count":`...)
	b = strconv.AppendInt(b, int64(len(results)), 10)
	b = append(b, `,"first_t":`...)
	b = strconv.AppendInt(b, int64(results[0].T), 10)
	b = append(b, `,"last_t":`...)
	b = strconv.AppendInt(b, int64(results[len(results)-1].T), 10)
	if replayed {
		b = append(b, `,"replayed":true`...)
	}
	b = append(b, '}', '\n')
	a.resp = b
	return b
}

// encodeMinimalBatchResponse is the Prefer: return=minimal rendering
// of the v2 steps response: the batch acknowledgement without the
// per-step results. An ingest pipeline pushing a million steps a
// second has no use for its own noisy values echoed back (consumers
// read /published or /watch), and at that rate the echo — hundreds of
// shortest-round-trip float renderings per batch — would be the
// largest single CPU cost of the endpoint.
//
//tplvet:hotpath
func (a *batchArena) encodeMinimalBatchResponse(results []stream.StepResult, replayed bool) []byte {
	b := a.resp[:0]
	b = append(b, `{"count":`...)
	b = strconv.AppendInt(b, int64(len(results)), 10)
	b = append(b, `,"first_t":`...)
	b = strconv.AppendInt(b, int64(results[0].T), 10)
	b = append(b, `,"last_t":`...)
	b = strconv.AppendInt(b, int64(results[len(results)-1].T), 10)
	if replayed {
		b = append(b, `,"replayed":true`...)
	}
	b = append(b, '}', '\n')
	a.resp = b
	return b
}

// decodeNDJSONArena decodes a full NDJSON body into the arena: fast
// path per line, strict encoding/json fallback for anything the
// scanner does not recognize. It is the transport-independent core of
// readBatch, factored out so the fuzz harness can drive it without an
// HTTP server.
//
//tplvet:hotpath
func (a *batchArena) decodeNDJSONArena(raw []byte) ([]stream.BatchStep, error) {
	// Pre-size the int slab off the body length: a JSON integer token is
	// at least two bytes ("N,"), so len/2 bounds the decoded ints. One
	// right-sized allocation matters here — growing a shared multi-MB
	// slab geometrically re-copies every earlier step's data each time,
	// and since oversized slabs are dropped at release, a values-mode
	// body was paying ~4x its own size in cold memmove on every request.
	if need := len(raw)/2 + 8; cap(a.ints)-len(a.ints) < need {
		grown := make([]int, len(a.ints), len(a.ints)+need)
		copy(grown, a.ints)
		a.ints = grown
	}
	steps := a.steps[:0]
	defer func() { a.steps = steps }()
	for start := 0; start < len(raw); {
		lineEnd := bytes.IndexByte(raw[start:], '\n')
		var line []byte
		next := len(raw)
		if lineEnd < 0 {
			line = raw[start:]
		} else {
			line = raw[start : start+lineEnd]
			next = start + lineEnd + 1
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			st, ok := fastParseStep(trimmed, a)
			if !ok {
				// Re-feed this line plus the rest of the body through the
				// strict decoder (it reads concatenated values, so objects
				// spanning lines work there too).
				if err := decodeNDJSONSlow(bytes.NewReader(raw[start:]), &steps); err != nil {
					return nil, err
				}
				break
			}
			if len(steps) >= maxBatchSteps {
				return nil, fmt.Errorf("service: batch exceeds %d steps", maxBatchSteps)
			}
			steps = append(steps, st)
		}
		start = next
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("service: empty batch")
	}
	return steps, nil
}
