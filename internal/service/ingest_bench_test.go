package service

// BenchmarkNDJSONValuesIngest measures the v2 batch endpoint end to
// end (handler, fast-path NDJSON decode, histogram build, cohort
// accounting) on one 100k-user values step — the number behind the
// v2-ndjson-values row of BENCH_api.json, kept as a Go benchmark so
// the fast path's trajectory is visible to `go test -bench`.

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"testing"
)

func BenchmarkNDJSONValuesIngest(b *testing.B) {
	h := NewAPI().Handler()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v2/sessions", bytes.NewReader([]byte(`{"name":"s","domain":4,"users":100000}`)))
	h.ServeHTTP(rec, req)
	if rec.Code != 201 {
		b.Fatal(rec.Body.String())
	}
	var line bytes.Buffer
	line.WriteString(`{"values":[`)
	for i := 0; i < 100000; i++ {
		if i > 0 {
			line.WriteByte(',')
		}
		line.WriteString(strconv.Itoa(i % 4))
	}
	line.WriteString(`],"eps":0.1}` + "\n")
	body := line.Bytes()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v2/sessions/s/steps", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatal(rec.Body.String())
		}
	}
}
