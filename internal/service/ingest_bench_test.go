package service

// BenchmarkNDJSONValuesIngest measures the v2 batch endpoint end to
// end (handler, fast-path NDJSON decode, histogram build, cohort
// accounting) on one 100k-user values step — the number behind the
// v2-ndjson-values row of BENCH_api.json, kept as a Go benchmark so
// the fast path's trajectory is visible to `go test -bench`.

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"testing"
)

// BenchmarkNDJSONCountsIngest is the v2-ndjson-counts shape of
// BENCH_api.json without the TCP hop: a 96-step batch of domain-4
// histograms against a 100k-user, 10-cohort session. ReportAllocs
// makes the pooled-arena contract visible: steady state should be a
// handful of allocations per *batch*, not per step.
func BenchmarkNDJSONCountsIngest(b *testing.B) {
	benchCountsIngest(b, false)
}

// BenchmarkNDJSONCountsIngestMinimal is the same batch with
// `Prefer: return=minimal` — the recommended high-rate ingest
// contract, which acks the batch instead of echoing every step's
// noisy histogram. The gap to BenchmarkNDJSONCountsIngest is the echo
// encoding cost.
func BenchmarkNDJSONCountsIngestMinimal(b *testing.B) {
	benchCountsIngest(b, true)
}

func benchCountsIngest(b *testing.B, minimal bool) {
	h := NewAPI().Handler()
	rec := httptest.NewRecorder()
	cfg := `{"name":"s","domain":4,"users":100000,"seed":7,"cohorts":[`
	for i := 0; i < 10; i++ {
		if i > 0 {
			cfg += ","
		}
		cfg += `{"users":10000}`
	}
	cfg += `]}`
	req := httptest.NewRequest("POST", "/v2/sessions", bytes.NewReader([]byte(cfg)))
	h.ServeHTTP(rec, req)
	if rec.Code != 201 {
		b.Fatal(rec.Body.String())
	}
	var buf bytes.Buffer
	for s := 0; s < 96; s++ {
		buf.WriteString(`{"counts":[25000,25000,25000,25000],"eps":0.1}` + "\n")
	}
	body := buf.Bytes()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v2/sessions/s/steps", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		if minimal {
			req.Header.Set("Prefer", "return=minimal")
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatal(rec.Body.String())
		}
	}
}

func BenchmarkNDJSONValuesIngest(b *testing.B) {
	benchValuesIngest(b, 1)
}

// BenchmarkNDJSONValuesBatchIngest is the multi-step values body (the
// BENCH_api.json request shape). It pins the slab pre-sizing in
// decodeNDJSONArena: without it, growing the shared int slab under a
// ~10MB body re-copies every earlier step's ints on each growth, and
// this benchmark runs several times slower than 48x the single-step
// one.
func BenchmarkNDJSONValuesBatchIngest(b *testing.B) {
	benchValuesIngest(b, 48)
}

func benchValuesIngest(b *testing.B, steps int) {
	h := NewAPI().Handler()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v2/sessions", bytes.NewReader([]byte(`{"name":"s","domain":4,"users":100000}`)))
	h.ServeHTTP(rec, req)
	if rec.Code != 201 {
		b.Fatal(rec.Body.String())
	}
	var line bytes.Buffer
	for s := 0; s < steps; s++ {
		line.WriteString(`{"values":[`)
		for i := 0; i < 100000; i++ {
			if i > 0 {
				line.WriteByte(',')
			}
			line.WriteString(strconv.Itoa(i % 4))
		}
		line.WriteString(`],"eps":0.1}` + "\n")
	}
	body := line.Bytes()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v2/sessions/s/steps", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatal(rec.Body.String())
		}
	}
}
