package service

import (
	"bytes"
	"strconv"

	"repro/internal/stream"
)

// The NDJSON ingest fast path. Batched values ingestion is bottlenecked
// not by accounting (cohort-sharded, ~µs/step) but by encoding/json
// reflection over 100k-integer arrays (~10ms/step at 100k users). The
// v2 NDJSON contract is one flat step object per line, so a strict
// hand-rolled scanner can parse the common shape — {"values":[ints],
// "eps":num} / {"counts":[ints],...} in any key order — an order of
// magnitude faster. Anything the scanner does not recognize (escaped
// keys, nested objects, floats in values, unknown fields, objects
// spanning lines) bails out and the remainder of the body is handled
// by the encoding/json slow path, so semantics — including
// unknown-field rejection — are identical; the fast path only ever
// accepts byte sequences the slow path would parse to the same step.
// BENCH_api.json records the effect.

// stepParser scans one NDJSON line, carving decoded int arrays and
// eps boxes out of the request's arena slabs instead of allocating.
type stepParser struct {
	b []byte
	i int
	a *batchArena
}

//tplvet:hotpath
func (p *stepParser) skipWS() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

// literal consumes c and reports success.
//
//tplvet:hotpath
func (p *stepParser) literal(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// key parses a plain (escape-free) object key. The returned slice
// aliases the line buffer; callers compare it in a string-conversion
// switch, which the compiler keeps allocation-free.
//
//tplvet:hotpath
func (p *stepParser) key() ([]byte, bool) {
	if !p.literal('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			k := p.b[start:p.i]
			p.i++
			return k, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false // escapes and control chars go to the slow path
		}
		p.i++
	}
	return nil, false
}

// intArray parses [int, int, ...] of plain decimal integers. The
// inner loop avoids per-element helper calls: the common case —
// "v,v,v" with no whitespace — touches each byte exactly once.
//
// Elements append to the arena's int slab and the carved region is
// returned as a capacity-capped sub-slice: subsequent arrays append
// past it, and slab growth relocating the backing array leaves
// already-carved slices reading the old (immutable) memory, so every
// returned slice stays valid for the life of the request.
//
//tplvet:hotpath
func (p *stepParser) intArray() ([]int, bool) {
	if !p.literal('[') {
		return nil, false
	}
	p.skipWS()
	if p.literal(']') {
		return []int{}, true
	}
	base := len(p.a.ints)
	out := p.a.ints
	b := p.b
	i := p.i
	for {
		if i < len(b) {
			if c := b[i]; c == ' ' || c == '\t' || c == '\r' || c == '\n' {
				p.i = i
				p.skipWS()
				i = p.i
			}
		}
		neg := false
		if i < len(b) && b[i] == '-' {
			neg = true
			i++
		}
		start := i
		v := 0
		for i < len(b) {
			c := b[i] - '0'
			if c > 9 {
				break
			}
			v = v*10 + int(c)
			i++
		}
		if n := i - start; n == 0 || n > 12 || (n > 1 && b[start] == '0') {
			// 0 digits, implausibly large, or a leading zero (invalid
			// JSON): the slow path decides.
			p.i = i
			return nil, false
		}
		if i < len(b) {
			if c := b[i]; c == '.' || c == 'e' || c == 'E' {
				p.i = i
				return nil, false // a float literal; the slow path decides
			}
		}
		if neg {
			v = -v
		}
		out = append(out, v)
		if i < len(b) {
			switch b[i] {
			case ',':
				i++
				continue
			case ']':
				p.i = i + 1
				p.a.ints = out
				return out[base:len(out):len(out)], true
			case ' ', '\t', '\r', '\n':
				p.i = i
				p.skipWS()
				if p.literal(',') {
					i = p.i
					continue
				}
				if p.literal(']') {
					p.a.ints = out
					return out[base:len(out):len(out)], true
				}
				i = p.i
			}
		}
		// Bail without writing the slab back: nothing past the carve
		// base is visible to anyone.
		p.i = i
		return nil, false
	}
}

// number parses a token following the exact JSON number grammar —
// strconv.ParseFloat alone is laxer (it takes ".5", "5.", "+1", hex),
// and the fast path must never accept what the slow path would 400.
//
//tplvet:hotpath
func (p *stepParser) number() (float64, bool) {
	b := p.b
	start := p.i
	i := p.i
	if i < len(b) && b[i] == '-' {
		i++
	}
	// int: "0" or [1-9][0-9]*
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return 0, false
	}
	// frac: '.' [0-9]+
	if i < len(b) && b[i] == '.' {
		i++
		d := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i == d {
			return 0, false
		}
	}
	// exp: [eE] [+-]? [0-9]+
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		d := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i == d {
			return 0, false
		}
	}
	tok := b[start:i]
	if a := p.a; a != nil && a.epsTokLen == len(tok) && bytes.Equal(a.epsTok[:a.epsTokLen], tok) {
		p.i = i
		return a.epsTokVal, true
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, false
	}
	if a := p.a; a != nil && len(tok) <= len(a.epsTok) {
		a.epsTokLen = copy(a.epsTok[:], tok)
		a.epsTokVal = v
	}
	p.i = i
	return v, true
}

// fastParseStep attempts the strict fast parse of one NDJSON line
// into the arena. ok=false means "use the slow path", not "invalid";
// a bailing parse rolls the arena slabs back to their pre-line marks
// so rejected lines waste no slab space.
//
//tplvet:hotpath
func fastParseStep(line []byte, a *batchArena) (st stream.BatchStep, ok bool) {
	intsMark, epsMark := len(a.ints), len(a.eps)
	defer func() {
		if !ok {
			a.ints = a.ints[:intsMark]
			a.eps = a.eps[:epsMark]
		}
	}()
	p := &stepParser{b: line, a: a}
	p.skipWS()
	if !p.literal('{') {
		return st, false
	}
	p.skipWS()
	if p.literal('}') { // {} is a valid (empty) step object
		p.skipWS()
		return st, p.i == len(p.b)
	}
	for {
		p.skipWS()
		k, ok := p.key()
		if !ok {
			return st, false
		}
		p.skipWS()
		if !p.literal(':') {
			return st, false
		}
		p.skipWS()
		switch string(k) {
		case "values":
			if st.Values != nil {
				return st, false // duplicate key; slow path decides
			}
			if st.Values, ok = p.intArray(); !ok {
				return st, false
			}
		case "counts":
			if st.Counts != nil {
				return st, false
			}
			if st.Counts, ok = p.intArray(); !ok {
				return st, false
			}
		case "eps":
			if st.Eps != nil {
				return st, false
			}
			v, ok := p.number()
			if !ok {
				return st, false
			}
			st.Eps = a.grabEps(v)
		default:
			return st, false // unknown field: the slow path rejects it with the right error
		}
		p.skipWS()
		if p.literal(',') {
			continue
		}
		if p.literal('}') {
			break
		}
		return st, false
	}
	p.skipWS()
	if p.i != len(p.b) {
		return st, false // trailing bytes (second object on the line, garbage)
	}
	return st, true
}
