package service

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/persist"
)

// durableRegistry builds a registry persisting into dir.
func durableRegistry(t *testing.T, dir string, every int) *Registry {
	t.Helper()
	store, err := persist.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.EnablePersistence(store, every); err != nil {
		t.Fatal(err)
	}
	return r
}

// persistTestConfig is a small multi-cohort session with a correlated
// model, a plan, and a deterministic seed.
func persistTestConfig(name string, seed int64, plan bool) *SessionConfig {
	var chain ModelConfig
	if err := json.Unmarshal([]byte(`{"backward": {"rows": [[0.8,0.2],[0.3,0.7]]}}`), &chain); err != nil {
		panic(err)
	}
	cfg := &SessionConfig{
		Name:   name,
		Domain: 2,
		Cohorts: []CohortConfig{
			{Users: 3, Model: chain},
			{Users: 2, Model: ModelConfig{}},
		},
		Seed: seed,
	}
	if plan {
		cfg.Plan = &PlanConfig{Kind: "upper-bound", Alpha: 2.0}
	}
	return cfg
}

// stepSession pushes n explicit-budget steps into a session.
func stepSession(t *testing.T, s *Session, rng *rand.Rand, n int) {
	t.Helper()
	users := s.Server().Users()
	for i := 0; i < n; i++ {
		values := make([]int, users)
		for u := range values {
			values[u] = rng.Intn(s.Server().Domain())
		}
		if _, _, _, err := s.Collect(values, 0.1+0.05*float64(i%3)); err != nil {
			t.Fatal(err)
		}
	}
}

// mustMatchSessions compares every leakage-visible answer of two
// sessions exactly.
func mustMatchSessions(t *testing.T, a, b *Session) {
	t.Helper()
	sa, sb := a.Server(), b.Server()
	if sa.T() != sb.T() {
		t.Fatalf("T: %d != %d", sa.T(), sb.T())
	}
	ra, err := sa.Report()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sb.Report()
	if err != nil {
		t.Fatal(err)
	}
	if *ra != *rb {
		t.Fatalf("Report: %+v != %+v", ra, rb)
	}
	for u := 0; u < sa.Users(); u++ {
		ta, err := sa.UserTPLSeries(u)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := sb.UserTPLSeries(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(ta) != len(tb) {
			t.Fatalf("user %d series length %d != %d", u, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("user %d TPL[%d]: %v != %v", u, i, ta[i], tb[i])
			}
		}
	}
	for tt := 1; tt <= sa.T(); tt++ {
		pa, err := sa.Published(tt)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := sb.Published(tt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("published[%d][%d]: %v != %v", tt, i, pa[i], pb[i])
			}
		}
	}
}

// TestRegistryRestartRoundTrip is the service-level restart: create,
// step, drop the registry, restore into a new one, and require exact
// equality — then keep stepping to prove the restored session is live
// (journal, plan position, noise stream all continue).
func TestRegistryRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, planned := range []bool{false, true} {
		name := "plain"
		if planned {
			name = "planned"
		}
		t.Run(name, func(t *testing.T) {
			sub := filepath.Join(dir, name)
			r1 := durableRegistry(t, sub, 4)
			cfg := persistTestConfig("sess", 99, planned)
			s1, err := r1.Create(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// 10 steps with snapshot-every 4: snapshots at 4 and 8,
			// journal holds 9 and 10.
			stepSession(t, s1, rand.New(rand.NewSource(1)), 10)
			if info := s1.persistInfo(); info.LastSnapshotT != 8 || info.JournalRecords != 2 {
				t.Fatalf("coalescing off: %+v", info)
			}

			r2 := durableRegistry(t, sub, 4)
			restored, failed := r2.RestoreAll()
			if len(failed) != 0 {
				t.Fatalf("restore failures: %v", failed)
			}
			if len(restored) != 1 || restored[0] != "sess" {
				t.Fatalf("restored %v", restored)
			}
			s2, err := r2.Get("sess")
			if err != nil {
				t.Fatal(err)
			}
			mustMatchSessions(t, s1, s2)
			if got, want := s2.Created(), s1.Created(); !got.Equal(want) {
				t.Fatalf("created %v != %v", got, want)
			}
			if r2.Users() != s1.Server().Users() {
				t.Fatalf("restored registry accounts %d users", r2.Users())
			}

			// The explicit seed makes even the noise stream continue
			// exactly: both sessions publish identical histograms.
			stepSession(t, s1, rand.New(rand.NewSource(2)), 3)
			stepSession(t, s2, rand.New(rand.NewSource(2)), 3)
			mustMatchSessions(t, s1, s2)
		})
	}
}

// TestRestoreEntropySeededSession: the privacy-preserving default —
// sessions seeded from OS entropy restore with a reseeded noise stream
// but a bit-identical leakage series.
func TestRestoreEntropySeededSession(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir, 100)
	cfg := persistTestConfig("sess", 0, false) // Seed 0: entropy
	s1, err := r1.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepSession(t, s1, rand.New(rand.NewSource(1)), 6)
	// The stored snapshot must not contain a usable seed: grep the raw
	// state dir bytes for the provenance marker instead of trusting the
	// API.
	if _, err := s1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	r2 := durableRegistry(t, dir, 100)
	if _, failed := r2.RestoreAll(); len(failed) != 0 {
		t.Fatalf("restore failures: %v", failed)
	}
	s2, err := r2.Get("sess")
	if err != nil {
		t.Fatal(err)
	}
	mustMatchSessions(t, s1, s2)
	if prov := s2.Server().NoiseState().Provenance; prov != "reseeded" {
		t.Fatalf("restored provenance %q, want reseeded", prov)
	}
	if info := s2.persistInfo(); info.NoiseProvenance != "reseeded" {
		t.Fatalf("summary provenance %+v", info)
	}
}

// TestRestoreSkipsCorruptSession: one corrupt tenant must not block
// the rest of the fleet.
func TestRestoreSkipsCorruptSession(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir, 100)
	for _, name := range []string{"good", "bad"} {
		cfg := persistTestConfig(name, 7, false)
		cfg.Name = name
		s, err := r1.Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stepSession(t, s, rand.New(rand.NewSource(3)), 2)
	}
	// Corrupt bad's snapshot body (past the envelope header).
	path := filepath.Join(dir, "bad.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := durableRegistry(t, dir, 100)
	restored, failed := r2.RestoreAll()
	if len(restored) != 1 || restored[0] != "good" {
		t.Fatalf("restored %v", restored)
	}
	if err := failed["bad"]; !errors.Is(err, persist.ErrChecksum) {
		t.Fatalf("bad session error: %v", err)
	}
	if _, err := r2.Get("good"); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRemovesState: deleting a session deletes its files, and a
// later restore does not resurrect it.
func TestDeleteRemovesState(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir, 100)
	s, err := r1.Create(persistTestConfig("sess", 7, false))
	if err != nil {
		t.Fatal(err)
	}
	stepSession(t, s, rand.New(rand.NewSource(3)), 2)
	if err := r1.Delete("sess"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("state dir not empty after delete: %v", entries)
	}
	r2 := durableRegistry(t, dir, 100)
	if restored, _ := r2.RestoreAll(); len(restored) != 0 {
		t.Fatalf("deleted session resurrected: %v", restored)
	}
}

// TestSnapshotEndpointAndHealth drives the HTTP layer: the snapshot
// endpoint forces a snapshot and reports metadata; healthz reports
// uptime, session count and persistence health; session summaries
// carry the persistence block.
func TestSnapshotEndpointAndHealth(t *testing.T) {
	dir := t.TempDir()
	api := NewAPI()
	store, err := persist.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := api.Registry().EnablePersistence(store, 50); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post("/v1/sessions", `{"name":"web","domain":2,"users":3,"seed":5}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post("/v1/sessions/web/steps", `{"values":[0,1,1],"eps":0.2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Snapshot-on-demand.
	resp = post("/v1/sessions/web/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	var snap struct {
		Name        string      `json:"name"`
		T           int         `json:"t"`
		Persistence PersistInfo `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Name != "web" || snap.T != 1 || snap.Persistence.LastSnapshotT != 1 || snap.Persistence.JournalRecords != 0 {
		t.Fatalf("snapshot response: %+v", snap)
	}
	if snap.Persistence.NoiseProvenance != "seeded" {
		t.Fatalf("provenance %q", snap.Persistence.NoiseProvenance)
	}

	// Session summary carries persistence metadata.
	resp, err = http.Get(ts.URL + "/v1/sessions/web")
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Persistence == nil || sum.Persistence.LastSnapshotT != 1 {
		t.Fatalf("summary persistence: %+v", sum.Persistence)
	}

	// Health reports durability.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status        string            `json:"status"`
		Sessions      int               `json:"sessions"`
		Users         int               `json:"users"`
		UptimeSeconds float64           `json:"uptime_seconds"`
		Persistence   PersistenceHealth `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Sessions != 1 || health.Users != 3 {
		t.Fatalf("health: %+v", health)
	}
	if health.UptimeSeconds < 0 {
		t.Fatalf("uptime %v", health.UptimeSeconds)
	}
	if health.Persistence.Mode != "durable" || health.Persistence.StateDir != dir || health.Persistence.SnapshotEvery != 50 {
		t.Fatalf("persistence health: %+v", health.Persistence)
	}
	if health.Persistence.LastSnapshotAgeSeconds == nil || *health.Persistence.LastSnapshotAgeSeconds < 0 {
		t.Fatalf("snapshot age: %+v", health.Persistence.LastSnapshotAgeSeconds)
	}
}

// TestSnapshotEndpointEphemeral: 409 without a store, and health says
// ephemeral.
func TestSnapshotEndpointEphemeral(t *testing.T) {
	api := NewAPI()
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"name":"web","domain":2,"users":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/sessions/web/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ephemeral snapshot: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Persistence PersistenceHealth `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Persistence.Mode != "ephemeral" {
		t.Fatalf("mode %q", health.Persistence.Mode)
	}
}

// TestRegistryCloseFinalSnapshot: graceful shutdown snapshots every
// session, so a clean restart replays nothing from the journal.
func TestRegistryCloseFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir, 100) // coalescing never fires on its own
	s, err := r1.Create(persistTestConfig("sess", 7, false))
	if err != nil {
		t.Fatal(err)
	}
	stepSession(t, s, rand.New(rand.NewSource(3)), 5)
	if info := s.persistInfo(); info.JournalRecords != 5 {
		t.Fatalf("journal before close: %+v", info)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := durableRegistry(t, dir, 100)
	if _, failed := r2.RestoreAll(); len(failed) != 0 {
		t.Fatalf("restore failures: %v", failed)
	}
	s2, err := r2.Get("sess")
	if err != nil {
		t.Fatal(err)
	}
	if info := s2.persistInfo(); info.LastSnapshotT != 5 || info.JournalRecords != 0 {
		t.Fatalf("after clean restart: %+v", info)
	}
	mustMatchSessions(t, s, s2)
}

// TestEnablePersistenceAfterSessions is rejected: durability is boot
// wiring, not a runtime toggle.
func TestEnablePersistenceAfterSessions(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create(persistTestConfig("sess", 7, false)); err != nil {
		t.Fatal(err)
	}
	store, err := persist.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnablePersistence(store, 10); err == nil {
		t.Fatal("EnablePersistence accepted with live sessions")
	}
}

// TestPersistenceHealthStaleness: the health age tracks the stalest
// session.
func TestPersistenceHealthStaleness(t *testing.T) {
	dir := t.TempDir()
	r := durableRegistry(t, dir, 100)
	base := time.Unix(1_700_000_000, 0)
	clock := base
	r.now = func() time.Time { return clock }
	if _, err := r.Create(persistTestConfig("old", 7, false)); err != nil {
		t.Fatal(err)
	}
	clock = base.Add(90 * time.Second)
	cfg := persistTestConfig("new", 7, false)
	cfg.Name = "new"
	if _, err := r.Create(cfg); err != nil {
		t.Fatal(err)
	}
	clock = base.Add(100 * time.Second)
	h := r.PersistenceHealth()
	if h.LastSnapshotAgeSeconds == nil || *h.LastSnapshotAgeSeconds != 100 {
		t.Fatalf("stalest age: %+v", h.LastSnapshotAgeSeconds)
	}
}

// TestDoubleCrashWithTornTail is the regression test for the
// append-after-torn-tail hole: crash #1 tears the journal's final
// record; the restored process must bake the replayed tail into a
// fresh snapshot before appending, so steps served after recovery
// survive crash #2 instead of being stranded behind the torn record.
func TestDoubleCrashWithTornTail(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir, 100) // coalescing never fires on its own
	s1, err := r1.Create(persistTestConfig("sess", 11, false))
	if err != nil {
		t.Fatal(err)
	}
	stepSession(t, s1, rand.New(rand.NewSource(4)), 5)

	// Crash #1: no Close, and the last journal record is torn mid-write.
	jpath := filepath.Join(dir, "sess.journal")
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := durableRegistry(t, dir, 100)
	if _, failed := r2.RestoreAll(); len(failed) != 0 {
		t.Fatalf("restore failures: %v", failed)
	}
	s2, err := r2.Get("sess")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Server().T() != 4 {
		t.Fatalf("after torn-tail recovery T=%d, want 4 (intact records)", s2.Server().T())
	}
	if info := s2.persistInfo(); info.LastSnapshotT != 4 || info.JournalRecords != 0 || info.Error != "" {
		t.Fatalf("recovery must resnapshot and reset the journal: %+v", info)
	}
	stepSession(t, s2, rand.New(rand.NewSource(5)), 3)

	// Crash #2: again no Close. Every step acknowledged after recovery
	// must survive.
	r3 := durableRegistry(t, dir, 100)
	if _, failed := r3.RestoreAll(); len(failed) != 0 {
		t.Fatalf("second restore failures: %v", failed)
	}
	s3, err := r3.Get("sess")
	if err != nil {
		t.Fatal(err)
	}
	if s3.Server().T() != 7 {
		t.Fatalf("after second crash T=%d, want 7 — post-recovery steps were lost", s3.Server().T())
	}
	mustMatchSessions(t, s2, s3)
}
