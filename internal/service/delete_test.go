package service

import (
	"net/http"
	"os"
	"strings"
	"testing"
)

// TestDeletePurgesPersistedState is the resurrection regression test:
// DELETE /vN/sessions/{name} on a durable registry must remove the
// session's snapshot AND journal from the state dir, so a process
// restart on the same directory does not bring the deleted tenant (and
// its privacy accounting) back from the dead.
func TestDeletePurgesPersistedState(t *testing.T) {
	dir := t.TempDir()
	for _, api := range []string{"/v1", "/v2"} {
		t.Run(strings.TrimPrefix(api, "/"), func(t *testing.T) {
			reg := durableRegistry(t, dir, 3)
			h := (&API{reg: reg, started: reg.now()}).Handler()
			name := "ghost-" + strings.TrimPrefix(api, "/")
			rec := doJSON(t, h, "POST", api+"/sessions",
				`{"name":"`+name+`","domain":2,"users":3,"seed":7}`, nil)
			if rec.Code != http.StatusCreated {
				t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
			}
			// Enough steps to have both a coalesced snapshot and a journal
			// tail on disk.
			stepBody := `{"values":[0,1,0],"eps":0.1}`
			if api == "/v2" {
				stepBody = "[" + stepBody + "]"
			}
			for i := 0; i < 5; i++ {
				rec = doJSON(t, h, "POST", api+"/sessions/"+name+"/steps", stepBody, nil)
				if rec.Code != http.StatusOK {
					t.Fatalf("step: %d %s", rec.Code, rec.Body.String())
				}
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			found := 0
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), name+".") {
					found++
				}
			}
			if found == 0 {
				t.Fatal("no persisted files before delete — test is vacuous")
			}

			if rec = doJSON(t, h, "DELETE", api+"/sessions/"+name, "", nil); rec.Code != http.StatusNoContent {
				t.Fatalf("delete: %d %s", rec.Code, rec.Body.String())
			}
			entries, err = os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), name+".") {
					t.Fatalf("deleted session left %s in the state dir", e.Name())
				}
			}

			// The restart: a fresh registry on the same dir must not
			// resurrect the deleted session.
			reg2 := durableRegistry(t, dir, 3)
			restored, failed := reg2.RestoreAll()
			for _, n := range restored {
				if n == name {
					t.Fatalf("deleted session %q resurrected on restart", name)
				}
			}
			if err := failed[name]; err != nil {
				t.Fatalf("deleted session %q left restorable-but-corrupt state: %v", name, err)
			}
			if _, err := reg2.Get(name); err == nil {
				t.Fatalf("deleted session %q is live after restart", name)
			}
		})
	}
}
