package service

import (
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/release"
	"repro/internal/stream"
)

// The uniform error model of the wire API (v2, and shared with v1):
// every error response is an RFC 7807 application/problem+json document
// carrying a stable machine-readable code. Clients branch on Code, not
// on error-string substrings; the human-readable Detail may change
// between releases, the codes may not.

// problemContentType is the RFC 7807 media type.
const problemContentType = "application/problem+json"

// Problem codes. Stable wire contract — append, never rename.
const (
	// CodeInvalidRequest: the request body or parameters failed
	// validation (malformed JSON, unknown fields, bad shapes, bad
	// budgets, out-of-range query parameters).
	CodeInvalidRequest = "invalid_request"
	// CodeSessionNotFound: the {name} path names no live session.
	CodeSessionNotFound = "session_not_found"
	// CodeSessionExists: create collided with a live session name.
	CodeSessionExists = "session_exists"
	// CodeCapacityExhausted: the process-wide population ceiling is
	// reached; retry after sessions are deleted.
	CodeCapacityExhausted = "capacity_exhausted"
	// CodeBudgetExhausted: the attached release plan has no budget left
	// (finite horizon exceeded) — continuing requires a new plan or
	// explicit budgets.
	CodeBudgetExhausted = "budget_exhausted"
	// CodeInvalidState: the operation is legal but not in the session's
	// current state (no release plan attached, restore-state mismatch).
	CodeInvalidState = "invalid_state"
	// CodeSnapshotUnavailable: a durable snapshot was requested from an
	// ephemeral (no -state-dir) process.
	CodeSnapshotUnavailable = "snapshot_unavailable"
	// CodeUnsupportedFormat: the ?format= value is not offered; the
	// problem's "supported" member lists the ones that are.
	CodeUnsupportedFormat = "unsupported_format"
	// CodePayloadTooLarge: the request body exceeded the byte ceiling.
	CodePayloadTooLarge = "payload_too_large"
	// CodeIdempotencyConflict: an Idempotency-Key was reused with a
	// different request body.
	CodeIdempotencyConflict = "idempotency_conflict"
	// CodeModelNotFound: a session config referenced a named bundle
	// model that the active bundle revision does not carry (or no bundle
	// is active). Retry after the right bundle activates.
	CodeModelNotFound = "model_not_found"
	// CodeWrongShard: this process no longer owns the session — it was
	// migrated to another shard. The problem's "location" member carries
	// the new owner's base URL; re-route and retry (the refusing shard
	// applied nothing, so even non-idempotent requests are safe to
	// resend).
	CodeWrongShard = "wrong_shard"
	// CodeShardUnavailable: the router could not reach the shard owning
	// the session. Retry after the shard recovers or is replaced.
	CodeShardUnavailable = "shard_unavailable"
	// CodeMigrateFailed: a migrate request could not complete because the
	// target shard refused or was unreachable; the session is untouched
	// on its current owner.
	CodeMigrateFailed = "migrate_failed"
	// CodeInternal: the service failed; nothing was wrong with the
	// request.
	CodeInternal = "internal"
)

// Problem is the error response body. Type stays "about:blank" (the
// RFC's registered default) with Title carrying the code's summary;
// Code is the stable machine contract. Error mirrors Detail under the
// pre-v2 key so v1 clients that read {"error": ...} keep working.
type Problem struct {
	Type      string   `json:"type"`
	Title     string   `json:"title"`
	Status    int      `json:"status"`
	Code      string   `json:"code"`
	Detail    string   `json:"detail,omitempty"`
	Supported []string `json:"supported,omitempty"`
	// Location carries the new owner's base URL on wrong_shard problems.
	Location string `json:"location,omitempty"`
	Error    string `json:"error,omitempty"`
}

// problemTitles maps codes to their RFC 7807 titles.
var problemTitles = map[string]string{
	CodeInvalidRequest:      "invalid request",
	CodeSessionNotFound:     "session not found",
	CodeSessionExists:       "session already exists",
	CodeCapacityExhausted:   "capacity exhausted",
	CodeBudgetExhausted:     "privacy budget exhausted",
	CodeInvalidState:        "invalid session state",
	CodeSnapshotUnavailable: "snapshot unavailable",
	CodeUnsupportedFormat:   "unsupported format",
	CodePayloadTooLarge:     "payload too large",
	CodeIdempotencyConflict: "idempotency key conflict",
	CodeModelNotFound:       "bundle model not found",
	CodeWrongShard:          "session owned by another shard",
	CodeShardUnavailable:    "shard unavailable",
	CodeMigrateFailed:       "migration failed",
	CodeInternal:            "internal error",
}

// WrongShardError reports that a session migrated away from this process.
// Location is the new owner's base URL when known.
type WrongShardError struct {
	Name     string
	Location string
}

func (e *WrongShardError) Error() string {
	if e.Location == "" {
		return "service: session " + e.Name + " has migrated to another shard"
	}
	return "service: session " + e.Name + " has migrated to " + e.Location
}

// ErrMigrateFailed tags a migrate whose target shard refused or was
// unreachable; the source session is untouched.
var ErrMigrateFailed = errors.New("service: migration failed")

// ErrModelNotFound tags a session config referencing a bundle model
// the active revision does not carry.
var ErrModelNotFound = errors.New("service: bundle model not found")

// errIdemConflict tags idempotency-key reuse with a different body.
var errIdemConflict = errors.New("service: idempotency key reused with a different request body")

// classify maps an error to its HTTP status and problem code. It is the
// single source of truth for both API versions (v1 reports the same
// statuses it always has; v2 adds the codes).
func classify(err error) (status int, code string) {
	var tooBig *http.MaxBytesError
	var invalid *core.InvalidStateError
	var wrongShard *WrongShardError
	switch {
	case errors.As(err, &wrongShard):
		// 421 Misdirected Request: the session lives on another shard.
		return http.StatusMisdirectedRequest, CodeWrongShard
	case errors.Is(err, ErrMigrateFailed):
		return http.StatusBadGateway, CodeMigrateFailed
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, CodeSessionNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict, CodeSessionExists
	case errors.Is(err, ErrCapacity):
		return http.StatusServiceUnavailable, CodeCapacityExhausted
	case errors.Is(err, release.ErrHorizonExceeded):
		return http.StatusConflict, CodeBudgetExhausted
	case errors.Is(err, stream.ErrNoPlan):
		return http.StatusConflict, CodeInvalidState
	case errors.Is(err, ErrNoStore):
		return http.StatusConflict, CodeSnapshotUnavailable
	case errors.Is(err, errIdemConflict):
		return http.StatusUnprocessableEntity, CodeIdempotencyConflict
	case errors.Is(err, ErrModelNotFound):
		// 409, not 404: the request names no missing resource path — it
		// conflicts with the server's current bundle state, and the same
		// request can succeed once the right revision activates.
		return http.StatusConflict, CodeModelNotFound
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, CodePayloadTooLarge
	case errors.As(err, &invalid), errors.Is(err, stream.ErrBadServerState):
		return http.StatusUnprocessableEntity, CodeInvalidState
	default:
		return http.StatusBadRequest, CodeInvalidRequest
	}
}

// newProblem builds a problem body for one code.
func newProblem(status int, code, detail string) Problem {
	return Problem{
		Type:   "about:blank",
		Title:  problemTitles[code],
		Status: status,
		Code:   code,
		Detail: detail,
		Error:  detail,
	}
}

// NewProblem builds a problem body for one code; the cluster router uses
// it to answer with the same wire shapes the shards produce.
func NewProblem(status int, code, detail string) Problem {
	return newProblem(status, code, detail)
}

// WriteProblem emits one problem+json response (exported for the router).
func WriteProblem(w http.ResponseWriter, p Problem) {
	writeProblem(w, p)
}

// writeProblem emits one problem+json response.
func writeProblem(w http.ResponseWriter, p Problem) {
	w.Header().Set("Content-Type", problemContentType)
	writeBody(w, p.Status, p)
}

// writeError maps an error to a problem response with the status the
// classifier picks.
func writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	p := newProblem(status, code, err.Error())
	var wrongShard *WrongShardError
	if errors.As(err, &wrongShard) {
		p.Location = wrongShard.Location
	}
	writeProblem(w, p)
}

// writeErrorStatus is writeError with the handler overriding the
// status (e.g. a read endpoint reporting a server-side failure as 500
// even though the underlying error would classify as a bad request).
func writeErrorStatus(w http.ResponseWriter, status int, err error) {
	_, code := classify(err)
	if status == http.StatusInternalServerError {
		code = CodeInternal
	}
	writeProblem(w, newProblem(status, code, err.Error()))
}
