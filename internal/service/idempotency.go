package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/stream"
)

// Idempotent batch ingestion. A v2 steps request may carry an
// Idempotency-Key header; the session remembers, per key, which steps
// that batch landed (in a bounded LRU), so a client retrying after an
// ambiguous failure — timeout, dropped connection, 5xx — gets the
// original batch's results back instead of double-charging every
// user's privacy budget. The memory rides the existing durability
// pipeline: the whole batch (step records + idempotency record) is
// journaled as one checksummed record and the LRU is carried in
// snapshots, so exactly-once holds across crashes too — a torn journal
// tail drops a batch and its key together, and a batch that survived
// keeps its key. Replayed responses are reconstructed from the
// published history rather than stored, so an entry costs O(key +
// batch length), not O(batch x domain).

// idemCacheSize bounds the per-session key memory. At the default
// batch sizes this is hours of continuous retry-safe ingestion; evicted
// keys degrade to at-most-once (a retry of an evicted batch is applied
// again), which is why the bound is generous.
const idemCacheSize = 256

// idemRecord is one remembered batch: the key, a digest of the request
// content (so a reused key with a different body is rejected rather
// than silently answered with someone else's results), and the span of
// steps the batch landed.
//
//tplvet:wire v2 schema=2e9d7b2c3d14
type idemRecord struct {
	Key     string
	Hash    [32]byte
	FirstT  int
	Planned []bool
}

// lastT returns the final 1-based step the batch landed.
func (e *idemRecord) lastT() int { return e.FirstT + len(e.Planned) - 1 }

// idemCache is a bounded LRU of idemRecords. Not safe for concurrent
// use; the owning session serializes access under stepMu.
type idemCache struct {
	order *list.List // front = least recently used
	byKey map[string]*list.Element
}

func (c *idemCache) init() {
	if c.order == nil {
		c.order = list.New()
		c.byKey = make(map[string]*list.Element)
	}
}

// get returns the record for key, marking it recently used.
func (c *idemCache) get(key string) (*idemRecord, bool) {
	c.init()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToBack(el)
	rec := el.Value.(*idemRecord)
	return rec, true
}

// put inserts (or refreshes) a record, evicting the least recently
// used entry past the capacity.
func (c *idemCache) put(rec idemRecord) {
	c.init()
	if el, ok := c.byKey[rec.Key]; ok {
		el.Value = &rec
		c.order.MoveToBack(el)
		return
	}
	c.byKey[rec.Key] = c.order.PushBack(&rec)
	for c.order.Len() > idemCacheSize {
		front := c.order.Front()
		delete(c.byKey, front.Value.(*idemRecord).Key)
		c.order.Remove(front)
	}
}

// entries returns the cache contents oldest-first (the order snapshots
// store and restores replay, so LRU order survives restarts).
func (c *idemCache) entries() []idemRecord {
	c.init()
	out := make([]idemRecord, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*idemRecord))
	}
	return out
}

// batchHash digests a batch's content deterministically: step framing,
// presence bits, and every value, so any semantic difference — values
// vs counts, a different eps, one changed entry — changes the hash.
func batchHash(steps []stream.BatchStep) [32]byte {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(len(steps)))
	for _, st := range steps {
		switch {
		case st.Values != nil:
			h.Write([]byte{'v'})
			writeInt(int64(len(st.Values)))
			for _, v := range st.Values {
				writeInt(int64(v))
			}
		case st.Counts != nil:
			h.Write([]byte{'c'})
			writeInt(int64(len(st.Counts)))
			for _, v := range st.Counts {
				writeInt(int64(v))
			}
		default:
			h.Write([]byte{'n'})
		}
		if st.Eps != nil {
			h.Write([]byte{'e'})
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(*st.Eps))
			h.Write(buf[:])
		} else {
			h.Write([]byte{'p'})
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// CollectBatch is the unified ingestion endpoint both API versions
// call: it applies a validated-atomic batch of steps (stream.Server's
// contract), persists it as one journal record, remembers it under the
// idempotency key (when one is given), and notifies live watchers. A
// replayed batch — same key, same content — re-answers from history
// without touching any accountant; a reused key with different content
// is an errIdemConflict.
func (s *Session) CollectBatch(key string, steps []stream.BatchStep) (results []stream.StepResult, replayed bool, err error) {
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	// A writer that raced a migration and still holds this pointer is
	// refused before touching any accountant: the state left with the
	// export, so applying here would acknowledge a lost write. The 421
	// redirect tells the client where to resend (migrate.go).
	if s.retired {
		return nil, false, &WrongShardError{Name: s.name, Location: s.retiredTo}
	}
	// One atomic load decides whether this batch is audited; the
	// disabled path pays nothing else (decision.go).
	sink := s.decisionSink()
	var hash [32]byte
	if key != "" {
		hash = batchHash(steps)
		if rec, ok := s.idem.get(key); ok {
			if rec.Hash != hash {
				err := fmt.Errorf("%w: key %q", errIdemConflict, key)
				if sink != nil {
					s.recordRefusal(sink, len(steps), key, err)
				}
				return nil, false, err
			}
			res, err := s.recordedResults(rec)
			if err == nil && sink != nil {
				s.recordReplay(sink, rec.FirstT, rec.lastT(), key)
			}
			return res, true, err
		}
	}
	results, err = s.srv.CollectBatch(steps)
	if err != nil {
		if sink != nil {
			s.recordRefusal(sink, len(steps), key, err)
		}
		return nil, false, err
	}
	var rec *idemRecord
	if key != "" {
		planned := make([]bool, len(results))
		for i, r := range results {
			planned[i] = r.Planned
		}
		rec = &idemRecord{Key: key, Hash: hash, FirstT: results[0].T, Planned: planned}
		s.idem.put(*rec)
	}
	s.persistBatch(results, rec)
	s.notifyStepsLocked(results)
	if sink != nil {
		epsSum, epsMax := 0.0, 0.0
		for _, r := range results {
			epsSum += r.Eps
			if r.Eps > epsMax {
				epsMax = r.Eps
			}
		}
		s.recordSteps(sink, results[0].T, results[len(results)-1].T, epsSum, epsMax, len(results), key)
	}
	return results, false, nil
}

// recordedResults reconstructs a remembered batch's results from the
// retained history (budgets + published histograms), bit-identical to
// the original response.
func (s *Session) recordedResults(rec *idemRecord) ([]stream.StepResult, error) {
	out := make([]stream.StepResult, len(rec.Planned))
	for i := range out {
		t := rec.FirstT + i
		eps, err := s.srv.Budget(t)
		if err != nil {
			return nil, fmt.Errorf("service: replaying idempotent batch at t=%d: %w", t, err)
		}
		pub, err := s.srv.Published(t)
		if err != nil {
			return nil, fmt.Errorf("service: replaying idempotent batch at t=%d: %w", t, err)
		}
		out[i] = stream.StepResult{T: t, Eps: eps, Planned: rec.Planned[i], Published: pub}
	}
	return out, nil
}
