package service

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/persist"
)

// syncedRegistry builds a durable registry in dir with the given
// journal sync mode (a tight group window keeps the test fast).
func syncedRegistry(t *testing.T, dir string, mode JournalSyncMode) *Registry {
	t.Helper()
	store, err := persist.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.SetJournalSync(mode, 500*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := r.EnablePersistence(store, 100); err != nil { // coalescing never fires
		t.Fatal(err)
	}
	return r
}

// TestJournalSyncDifferentialReplay is the differential test behind the
// group-commit optimisation: the SAME seeded workload journaled under
// per-batch fsync ("step", the reference), group commit and plain
// appends must recover to bit-identical sessions after a crash (no
// graceful Close, so recovery replays the journal). Group commit only
// batches fsyncs — it must never change what replay reconstructs.
func TestJournalSyncDifferentialReplay(t *testing.T) {
	const steps = 7
	modes := []JournalSyncMode{JournalSyncStep, JournalSyncGroup, JournalSyncNone}

	restoredByMode := func(t *testing.T, tearTail bool) map[JournalSyncMode]*Session {
		t.Helper()
		out := make(map[JournalSyncMode]*Session, len(modes))
		for _, mode := range modes {
			dir := t.TempDir()
			r1 := syncedRegistry(t, dir, mode)
			s1, err := r1.Create(persistTestConfig("sess", 1234, false))
			if err != nil {
				t.Fatal(err)
			}
			stepSession(t, s1, rand.New(rand.NewSource(6)), steps)
			if info := s1.persistInfo(); info.JournalRecords != steps {
				t.Fatalf("%s: journal holds %d records, want %d", mode, info.JournalRecords, steps)
			}
			if tearTail {
				// A crash mid-append leaves a torn final record; replay
				// must stop there identically in every mode.
				jpath := filepath.Join(dir, "sess.journal")
				raw, err := os.ReadFile(jpath)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(jpath, raw[:len(raw)-5], 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// No r1.Close(): the crash. Restore into a fresh registry.
			r2 := syncedRegistry(t, dir, mode)
			if _, failed := r2.RestoreAll(); len(failed) != 0 {
				t.Fatalf("%s: restore failures: %v", mode, failed)
			}
			s2, err := r2.Get("sess")
			if err != nil {
				t.Fatal(err)
			}
			out[mode] = s2
		}
		return out
	}

	t.Run("intact", func(t *testing.T) {
		restored := restoredByMode(t, false)
		for _, mode := range modes[1:] {
			mustMatchSessions(t, restored[JournalSyncStep], restored[mode])
		}
		if got := restored[JournalSyncGroup].Server().T(); got != steps {
			t.Fatalf("group-commit replay reached T=%d, want %d", got, steps)
		}
	})

	t.Run("torn-tail", func(t *testing.T) {
		restored := restoredByMode(t, true)
		for _, mode := range modes[1:] {
			mustMatchSessions(t, restored[JournalSyncStep], restored[mode])
		}
		if got := restored[JournalSyncGroup].Server().T(); got != steps-1 {
			t.Fatalf("torn-tail group replay reached T=%d, want %d", got, steps-1)
		}
	})
}

// TestSetJournalSyncValidation: unknown modes are rejected, and the
// mode is boot wiring — immutable once sessions exist.
func TestSetJournalSyncValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.SetJournalSync("fsync-sometimes", 0); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := r.Create(persistTestConfig("sess", 7, false)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetJournalSync(JournalSyncGroup, 0); err == nil {
		t.Fatal("SetJournalSync accepted with live sessions")
	}
}
