package service

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/persist"
	"repro/internal/stream"
)

// Durable accounting. With a store attached, every session's leakage
// state survives process death: the registry writes an initial snapshot
// at creation, appends one journal record per published step, coalesces
// full snapshots every snapshotEvery steps, and on boot restores every
// session from last-good-snapshot + replayed journal tail. Restarting
// tplserved therefore cannot reset anyone's privacy budget — which is
// the whole point of the accounting.

// Snapshot/journal schema versions inside the persist envelopes. Bump
// on any change to the encodings; restores reject versions they do not
// understand rather than guessing.
//
// Snapshots: version 2 added the idempotency entries (gob tolerates the
// absent field, so version-1 snapshots still restore — with an empty
// key memory). Journals: version-1 records are single stream.StepRecord
// bodies (pre-batch); version-2 records are batchRecords carrying a
// whole ingestion batch plus its optional idempotency record, appended
// as ONE checksummed envelope so a torn tail drops a batch and its key
// together — the retry-safety invariant (a key on disk implies all its
// steps are too) depends on exactly that atomicity.
const (
	sessionSchemaVersion       = 2
	sessionSchemaVersionLegacy = 1
	stepSchemaVersion          = 1
	batchSchemaVersion         = 2
)

// defaultSnapshotEvery is the snapshot coalescing interval in steps: a
// full snapshot costs O(users + cohorts·T), a journal record O(domain),
// so snapshots ride along only every N steps and recovery replays at
// most N records.
const defaultSnapshotEvery = 64

// JournalSyncMode selects how journal appends reach stable storage.
// All three modes replay to bit-identical state; they differ only in
// which crashes can lose the (never-acknowledged-as-durable) tail.
type JournalSyncMode string

const (
	// JournalSyncNone: plain appends, no fsync. Process death never
	// loses page-cache data; whole-machine power loss can lose the
	// un-synced tail. The registry default (the pre-group-commit
	// behavior).
	JournalSyncNone JournalSyncMode = "none"
	// JournalSyncGroup: appends are coalesced across all sessions into
	// one fsync per commit group with a bounded latency window
	// (persist.GroupCommitter). Power-loss durable at a fraction of
	// per-append fsync cost; the tplserved default.
	JournalSyncGroup JournalSyncMode = "group"
	// JournalSyncStep: one fsync per batch append — the strictest and
	// slowest mode, kept as the differential-testing reference.
	JournalSyncStep JournalSyncMode = "step"
)

// ParseJournalSyncMode validates a wire/flag spelling of a sync mode.
func ParseJournalSyncMode(s string) (JournalSyncMode, error) {
	switch m := JournalSyncMode(s); m {
	case JournalSyncNone, JournalSyncGroup, JournalSyncStep:
		return m, nil
	default:
		return "", fmt.Errorf("service: unknown journal sync mode %q (want none, group or step)", s)
	}
}

// SetJournalSync selects the journal durability mode (boot-time
// wiring, like EnablePersistence; must precede any session). window
// bounds how long a group-commit append may wait for companions
// (<= 0 selects the default).
func (r *Registry) SetJournalSync(mode JournalSyncMode, window time.Duration) error {
	if _, err := ParseJournalSyncMode(string(mode)); err != nil {
		return err
	}
	if n := r.Len(); n > 0 {
		return fmt.Errorf("service: journal sync must be configured before sessions exist (%d registered)", n)
	}
	// Construct and close committers outside pmu: pmu is the
	// never-blocks bookkeeping lock (healthz reads it), so even
	// boot-time persist-layer calls stay off it.
	var fresh *persist.GroupCommitter
	if mode == JournalSyncGroup {
		fresh = persist.NewGroupCommitter(window)
	}
	r.pmu.Lock()
	r.syncMode = mode
	var stale *persist.GroupCommitter
	if mode == JournalSyncGroup {
		if r.committer == nil {
			r.committer, fresh = fresh, nil
		}
	} else {
		stale, r.committer = r.committer, nil
	}
	r.pmu.Unlock()
	if fresh != nil {
		fresh.Close() // a committer was already installed; discard the spare
	}
	if stale != nil {
		stale.Close() // flushes pending appends off-lock
	}
	return nil
}

// sessionState is the gob body of a session snapshot: the original
// config (JSON, exactly as submitted — plans and noise modes are
// rebuilt from it rather than serialized), the creation time, the full
// server state, and the idempotency-key memory (oldest-first, so the
// LRU order survives the restart).
//
//tplvet:wire v2 schema=9bd3818beedc
type sessionState struct {
	ConfigJSON []byte
	Created    time.Time
	Server     *stream.ServerState
	Idem       []idemRecord
}

// batchRecord is the version-2 journal body: one ingestion batch and
// its optional idempotency record, durable or lost as a unit.
//
//tplvet:wire v2 schema=25063561ee9b
type batchRecord struct {
	Steps []stream.StepRecord
	Idem  *idemRecord
}

// gobEncode/gobDecode are the body codec. Gob encodes float64 as raw
// bits, so the wire round-trip is bit-identical — the restore-equality
// guarantee needs exactly that.
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// EnablePersistence attaches a snapshot store to the registry. Must be
// called before any session exists (boot-time wiring, not a runtime
// toggle); snapshotEvery <= 0 selects the default interval.
func (r *Registry) EnablePersistence(store *persist.Store, snapshotEvery int) error {
	if snapshotEvery <= 0 {
		snapshotEvery = defaultSnapshotEvery
	}
	if n := r.Len(); n > 0 {
		return fmt.Errorf("service: persistence must be enabled before sessions exist (%d registered)", n)
	}
	r.pmu.Lock()
	defer r.pmu.Unlock()
	r.store = store
	r.snapshotEvery = snapshotEvery
	return nil
}

// Store returns the attached snapshot store, or nil in ephemeral mode.
func (r *Registry) Store() *persist.Store {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	return r.store
}

// snapEvery returns the configured snapshot coalescing interval.
func (r *Registry) snapEvery() int {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	return r.snapshotEvery
}

// initPersistenceLocked writes the session's initial snapshot and opens
// its journal. Caller holds s.stepMu; the session may already be
// visible in the registry, so holding stepMu is what keeps any early
// step from slipping past the journal.
func (s *Session) initPersistenceLocked(store *persist.Store, snapshotEvery int) error {
	// store doubles as persistInfo's "is persistence on" flag and is
	// read under persistMu there, so its writes hold both mutexes.
	s.persistMu.Lock()
	s.store = store
	s.persistMu.Unlock()
	s.snapshotEvery = snapshotEvery
	if err := s.snapshotLocked(); err != nil {
		return err
	}
	j, err := store.OpenJournal(s.name)
	if err != nil {
		return err
	}
	s.journal = j
	return nil
}

// snapshotLocked captures and durably writes the session's full state,
// then resets the journal (snapshot first, reset second: a crash
// between the two leaves journal records the snapshot already covers,
// which replay skips by step index). A successful snapshot also heals
// a poisoned journal — the reset truncates whatever partial record a
// failed append left behind. Caller holds s.stepMu.
func (s *Session) snapshotLocked() error {
	st := s.srv.Snapshot()
	body, err := s.encodeStateLocked(st)
	if err != nil {
		return err
	}
	if err := s.store.SaveSnapshot(s.name, sessionSchemaVersion, body); err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journal.Reset(); err != nil {
			return err
		}
	}
	s.journalBad = false
	s.persistMu.Lock()
	s.lastSnapT = st.T()
	s.lastSnapAt = s.now()
	s.journalRecords = 0
	s.persistErr = nil
	s.persistMu.Unlock()
	return nil
}

// encodeStateLocked gob-encodes the session's full portable state (the
// same body snapshots persist; migration ships it over the wire). Caller
// holds s.stepMu; st is a fresh s.srv.Snapshot().
func (s *Session) encodeStateLocked(st *stream.ServerState) ([]byte, error) {
	body, err := gobEncode(sessionState{ConfigJSON: s.cfgJSON, Created: s.created, Server: st, Idem: s.idem.entries()})
	if err != nil {
		return nil, fmt.Errorf("service: encoding snapshot: %w", err)
	}
	return body, nil
}

// latchPersistErr records a persist failure for health reporting.
func (s *Session) latchPersistErr(err error) {
	s.persistMu.Lock()
	s.persistErr = err
	s.persistMu.Unlock()
}

// persistBatch journals one just-landed ingestion batch (with its
// optional idempotency record) as a single checksummed journal record
// and coalesces a snapshot every snapshotEvery steps. Persist failures
// never fail the batch — the in-memory accounting is already correct —
// but they are latched into the session's health so operators see
// durability degrade instead of discovering it at the next crash.
//
// A failed append may leave a partial record on disk, and nothing
// appended after such a poisoned tail is reachable by replay (recovery
// stops at the first unverifiable record). So after an append failure
// the session stops journaling and instead tries to resnapshot on
// every step until one succeeds, which truncates the poisoned tail and
// restores durability — and the snapshot carries the idempotency
// memory, so exactly-once survives the degradation too. Caller holds
// s.stepMu.
func (s *Session) persistBatch(results []stream.StepResult, idem *idemRecord) {
	if s.journal == nil {
		return
	}
	if s.journalBad {
		if err := s.snapshotLocked(); err != nil {
			s.latchPersistErr(err)
		}
		return // on success the snapshot covers this batch
	}
	rec := batchRecord{Steps: make([]stream.StepRecord, len(results)), Idem: idem}
	for i, r := range results {
		rec.Steps[i] = stream.StepRecord{T: r.T, Eps: r.Eps, Published: r.Published, NoiseDraws: r.Draws}
	}
	body, err := gobEncode(rec)
	if err == nil {
		err = s.appendJournal(batchSchemaVersion, body)
	}
	lastT := results[len(results)-1].T
	if err != nil {
		s.latchPersistErr(fmt.Errorf("service: journaling batch ending at step %d: %w", lastT, err))
		s.journalBad = true
		if serr := s.snapshotLocked(); serr != nil {
			s.latchPersistErr(serr)
		}
		return
	}
	s.persistMu.Lock()
	s.journalRecords += len(results)
	snapDue := lastT-s.lastSnapT >= s.snapshotEvery
	s.persistMu.Unlock()
	if snapDue {
		if err := s.snapshotLocked(); err != nil {
			s.latchPersistErr(err)
		}
	}
}

// appendJournal writes one record through the session's configured
// sync mode: plain append (none), the shared group committer (group —
// blocks until the group's fsync covers the record), or a private
// append+fsync (step). All modes return only after whatever durability
// the mode promises holds, so persistBatch's poisoned-tail handling is
// mode-independent. Caller holds s.stepMu, which is what limits each
// journal to one outstanding group-commit request and so keeps the
// on-disk record order equal to step order.
func (s *Session) appendJournal(version uint32, body []byte) error {
	switch s.syncMode {
	case JournalSyncGroup:
		if s.committer != nil {
			return s.committer.Append(s.journal, version, body)
		}
		fallthrough // configured group but no committer: degrade to step
	case JournalSyncStep:
		if err := s.journal.Append(version, body); err != nil {
			return err
		}
		return s.journal.Sync()
	default:
		return s.journal.Append(version, body)
	}
}

// PersistInfo is the session-summary digest of persistence health.
type PersistInfo struct {
	LastSnapshotT   int       `json:"last_snapshot_t"`
	LastSnapshotAt  time.Time `json:"last_snapshot_at"`
	JournalRecords  int       `json:"journal_records"`
	NoiseProvenance string    `json:"noise_provenance"`
	Error           string    `json:"error,omitempty"`
}

// persistInfo snapshots the persistence bookkeeping (nil in ephemeral
// mode). It takes only persistMu, never stepMu: health probes must not
// block behind an in-flight collect or an fsync'ing snapshot.
func (s *Session) persistInfo() *PersistInfo {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.store == nil {
		return nil
	}
	info := &PersistInfo{
		LastSnapshotT:   s.lastSnapT,
		LastSnapshotAt:  s.lastSnapAt,
		JournalRecords:  s.journalRecords,
		NoiseProvenance: s.srv.NoiseState().Provenance,
	}
	if s.persistErr != nil {
		info.Error = s.persistErr.Error()
	}
	return info
}

// SnapshotNow forces an immediate snapshot (the POST
// /v1/sessions/{name}/snapshot endpoint) and returns the resulting
// persistence info. ErrNoStore in ephemeral mode.
func (s *Session) SnapshotNow() (*PersistInfo, error) {
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	if s.store == nil {
		return nil, ErrNoStore
	}
	if err := s.snapshotLocked(); err != nil {
		s.latchPersistErr(err)
		return nil, err
	}
	return s.persistInfo(), nil
}

// closePersistenceLocked finishes a session's durability: one final
// snapshot (so a clean restart replays nothing) and journal close.
// Caller holds s.stepMu.
func (s *Session) closePersistenceLocked() error {
	if s.store == nil {
		return nil
	}
	err := s.snapshotLocked()
	if s.journal != nil {
		if cerr := s.journal.Close(); err == nil {
			err = cerr
		}
		s.journal = nil
	}
	return err
}

// dropPersistenceLocked closes the journal and deletes the session's
// files (session deletion, not shutdown). Caller holds s.stepMu.
func (s *Session) dropPersistenceLocked() error {
	if s.store == nil {
		return nil
	}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	store := s.store
	s.persistMu.Lock()
	s.store = nil
	s.persistMu.Unlock()
	return store.Remove(s.name)
}

// RestoreAll rebuilds every session found in the attached store: for
// each, the last good snapshot is loaded and verified, the plan and
// noise mode are rebuilt from the stored config, the compiled leakage
// engines are re-attached by content hash through the registry's
// shared model cache, and the journal tail is replayed on top. A
// session that cannot be restored is skipped with its error reported —
// its files stay on disk for inspection — so one corrupt tenant cannot
// keep the rest of the fleet down.
func (r *Registry) RestoreAll() (restored []string, failed map[string]error) {
	failed = make(map[string]error)
	store := r.Store()
	if store == nil {
		return nil, failed
	}
	names, err := store.List()
	if err != nil {
		failed[""] = err
		return nil, failed
	}
	// Reload migration tombstones first: a restarted shard must keep
	// redirecting traffic for sessions it handed off before the crash.
	if tombs, terr := store.LoadTombstones(); terr != nil {
		failed[""] = terr
	} else {
		for name, loc := range tombs {
			stripe := r.stripe(name)
			stripe.mu.Lock()
			stripe.tombstones[name] = loc
			stripe.mu.Unlock()
		}
	}
	for _, name := range names {
		if err := r.restoreOne(store, name); err != nil {
			failed[name] = err
			continue
		}
		restored = append(restored, name)
	}
	return restored, failed
}

// decodeSessionState verifies a snapshot envelope body and rebuilds the
// portable session value it carries: the stored config, and a live
// server with its plan and noise mode reconstructed and its compiled
// engines re-attached by content hash through the shared model cache.
// Both boot-time restore and cross-shard import go through it.
func (r *Registry) decodeSessionState(version uint32, body []byte) (st sessionState, cfg SessionConfig, srv *stream.Server, err error) {
	if version != sessionSchemaVersion && version != sessionSchemaVersionLegacy {
		return st, cfg, nil, fmt.Errorf("service: snapshot schema version %d not supported (want %d)", version, sessionSchemaVersion)
	}
	if err := gobDecode(body, &st); err != nil {
		return st, cfg, nil, fmt.Errorf("service: decoding snapshot: %w", err)
	}
	if st.Server == nil {
		return st, cfg, nil, fmt.Errorf("service: snapshot has no server state")
	}
	if err := json.Unmarshal(st.ConfigJSON, &cfg); err != nil {
		return st, cfg, nil, fmt.Errorf("service: decoding stored config: %w", err)
	}
	opts := stream.RestoreOptions{Cache: r.models}
	if cfg.Plan != nil {
		plan, err := cfg.Plan.buildPlan(cfg.firstModel())
		if err != nil {
			return st, cfg, nil, fmt.Errorf("service: rebuilding plan: %w", err)
		}
		opts.Plan = plan
	}
	if st.Server.RNG.Provenance != stream.NoiseSeeded {
		if opts.ReseedSeed, err = randomSeed(); err != nil {
			return st, cfg, nil, err
		}
	}
	srv, err = stream.RestoreServer(st.Server, opts)
	if err != nil {
		return st, cfg, nil, err
	}
	return st, cfg, srv, nil
}

// restoreOne loads, verifies, replays and registers one session.
func (r *Registry) restoreOne(store *persist.Store, name string) error {
	version, body, err := store.LoadSnapshot(name)
	if err != nil {
		return err
	}
	st, cfg, srv, err := r.decodeSessionState(version, body)
	if err != nil {
		return err
	}
	if cfg.Name != name {
		return fmt.Errorf("service: snapshot file %q holds config for session %q", name, cfg.Name)
	}
	snapT := srv.T()
	// Replay the journal tail: version-1 records are single steps,
	// version-2 records whole batches (steps + idempotency record).
	// Step records at or before the snapshot are expected (crash between
	// snapshot and journal reset) and skipped; gaps or schema mismatches
	// beyond it fail the session. Idempotency records are collected in
	// journal order and layered over the snapshot's entries below.
	var idemTail []idemRecord
	replayedSteps := 0
	applyStep := func(rec stream.StepRecord) error {
		if rec.T <= snapT {
			return nil
		}
		replayedSteps++
		return srv.ApplyStep(rec)
	}
	_, err = store.ReplayJournal(name, func(version uint32, body []byte) error {
		switch version {
		case stepSchemaVersion:
			var rec stream.StepRecord
			if err := gobDecode(body, &rec); err != nil {
				return fmt.Errorf("service: decoding journal record: %w", err)
			}
			return applyStep(rec)
		case batchSchemaVersion:
			var rec batchRecord
			if err := gobDecode(body, &rec); err != nil {
				return fmt.Errorf("service: decoding journal batch record: %w", err)
			}
			for _, st := range rec.Steps {
				if err := applyStep(st); err != nil {
					return err
				}
			}
			if rec.Idem != nil {
				idemTail = append(idemTail, *rec.Idem)
			}
			return nil
		default:
			return fmt.Errorf("service: journal schema version %d not supported (want %d or %d)", version, stepSchemaVersion, batchSchemaVersion)
		}
	})
	if err != nil {
		return err
	}
	snapAt := r.now()
	if mod, _, err := store.SnapshotStat(name); err == nil {
		snapAt = mod
	}
	r.pmu.Lock()
	every, mode, committer := r.snapshotEvery, r.syncMode, r.committer
	r.pmu.Unlock()
	s := &Session{
		name:           name,
		created:        st.Created,
		srv:            srv,
		now:            r.now,
		sink:           &r.decisions,
		modelRevision:  cfg.ModelRevision,
		store:          store,
		cfgJSON:        st.ConfigJSON,
		snapshotEvery:  every,
		syncMode:       mode,
		committer:      committer,
		lastSnapT:      snapT,
		lastSnapAt:     snapAt,
		journalRecords: replayedSteps,
	}
	// Rebuild the idempotency memory: snapshot entries first (their
	// stored order is the LRU order), then the journal tail's. Entries
	// naming steps beyond the restored history are dropped — their batch
	// never fully landed, so a retry must be applied, not replayed.
	for _, rec := range append(append([]idemRecord(nil), st.Idem...), idemTail...) {
		if rec.FirstT >= 1 && rec.lastT() <= srv.T() {
			s.idem.put(rec)
		}
	}
	j, err := store.OpenJournal(name)
	if err != nil {
		return err
	}
	s.journal = j
	// Bake the replayed tail into a fresh snapshot and reset the
	// journal before accepting new steps. Without this, the journal is
	// reopened in append mode behind whatever the crash left — and if
	// that includes a torn record, everything appended after it would
	// be unreachable by the next recovery (replay stops at the first
	// unverifiable record): a second crash would then silently lose
	// acknowledged steps. The session is not yet visible, so no lock
	// ordering concerns.
	if err := s.snapshotLocked(); err != nil {
		s.journalBad = true // persistStep retries the snapshot instead of appending
		s.latchPersistErr(err)
	}
	if err := r.reserveUsers(srv.Users()); err != nil {
		j.Close()
		return err
	}
	stripe := r.stripe(name)
	stripe.mu.Lock()
	if _, taken := stripe.sessions[name]; taken {
		stripe.mu.Unlock()
		r.totalUsers.Add(-int64(srv.Users()))
		j.Close()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	stripe.sessions[name] = s
	stripe.mu.Unlock()
	return nil
}

// Close finishes every session's durability (final snapshot + journal
// close) and stops the group committer. Called on graceful shutdown;
// ephemeral registries no-op.
func (r *Registry) Close() error {
	var firstErr error
	for _, s := range r.List() {
		s.stepMu.Lock()
		if err := s.closePersistenceLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.stepMu.Unlock()
	}
	// After the loop no session appends anymore (each was closed under
	// its stepMu), so the committer drains cleanly.
	r.pmu.Lock()
	gc := r.committer
	r.committer = nil
	r.pmu.Unlock()
	if gc != nil {
		if err := gc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// PersistenceHealth is the operator's view of durability, reported by
// GET /healthz.
type PersistenceHealth struct {
	// Mode is "durable" (a state dir is attached) or "ephemeral".
	Mode string `json:"mode"`
	// StateDir is the snapshot directory (durable mode only).
	StateDir string `json:"state_dir,omitempty"`
	// SnapshotEvery is the coalescing interval in steps.
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// LastSnapshotAgeSeconds is the age of the *stalest* session
	// snapshot — the worst-case recovery window. Omitted when no
	// session exists.
	LastSnapshotAgeSeconds *float64 `json:"last_snapshot_age_seconds,omitempty"`
	// SessionsWithErrors counts sessions whose last persist attempt
	// failed (non-zero means durability is degraded).
	SessionsWithErrors int `json:"sessions_with_errors,omitempty"`
}

// PersistenceHealth summarizes durability across all sessions.
func (r *Registry) PersistenceHealth() PersistenceHealth {
	store := r.Store()
	if store == nil {
		return PersistenceHealth{Mode: "ephemeral"}
	}
	h := PersistenceHealth{Mode: "durable", StateDir: store.Dir(), SnapshotEvery: r.snapEvery()}
	now := r.now()
	var oldest time.Time
	for _, s := range r.List() {
		info := s.persistInfo()
		if info == nil {
			continue
		}
		if info.Error != "" {
			h.SessionsWithErrors++
		}
		if oldest.IsZero() || info.LastSnapshotAt.Before(oldest) {
			oldest = info.LastSnapshotAt
		}
	}
	if !oldest.IsZero() {
		age := now.Sub(oldest).Seconds()
		h.LastSnapshotAgeSeconds = &age
	}
	return h
}
