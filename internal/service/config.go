package service

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"

	"repro/internal/markov"
	"repro/internal/release"
	"repro/internal/stream"
)

// randomSeed draws an unpredictable seed for a session's noise stream
// from the OS entropy source.
func randomSeed() (int64, error) {
	var buf [8]byte
	if _, err := crand.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("service: seeding noise source: %w", err)
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

// ModelConfig is the wire form of one adversary's temporal correlations
// (stream.AdversaryModel): either chain may be absent, and a model with
// both absent is the traditional DP adversary. Chains use the markov
// package's JSON encoding ({"rows": [[...], ...]}).
//
// Instead of inline chains, a model may name one from the active model
// bundle with Ref ({"ref": "road"}). Refs are resolved once, at
// session creation, against the bundle revision active at that moment
// — the resolved chains are inlined into the persisted config, so a
// crash recovery rebuilds the session the bundle it was created from,
// not whatever is active at restore time.
type ModelConfig struct {
	Backward *markov.Chain `json:"backward,omitempty"`
	Forward  *markov.Chain `json:"forward,omitempty"`
	Ref      string        `json:"ref,omitempty"`
}

func (m ModelConfig) adversary() stream.AdversaryModel {
	return stream.AdversaryModel{Backward: m.Backward, Forward: m.Forward}
}

// CohortConfig declares a block of users sharing one adversary model —
// the compact way to configure a large population. The expansion shares
// chain pointers, so a million-user cohort costs one model fingerprint.
type CohortConfig struct {
	Users int         `json:"users"`
	Model ModelConfig `json:"model"`
}

// PlanConfig selects a release plan to attach at session creation, so
// steps can be collected without an explicit budget. Kind uses the
// plan-kind tags of internal/release's JSON encoding.
type PlanConfig struct {
	// Kind is "upper-bound" (Algorithm 2), "quantified" (Algorithm 3,
	// needs Horizon) or "w-event" (Theorem 2 windows, needs W).
	Kind    string  `json:"kind"`
	Alpha   float64 `json:"alpha"`
	Horizon int     `json:"horizon,omitempty"`
	W       int     `json:"w,omitempty"`
	// Model supplies the correlations the plan defends against. When
	// absent, the first user's model is used.
	Model *ModelConfig `json:"model,omitempty"`
}

// SessionConfig is the POST /v1/sessions request body. The population
// is declared exactly one way: Cohorts (recommended at scale), Models
// (one per user), or bare Users (everyone a traditional DP adversary).
type SessionConfig struct {
	Name   string `json:"name"`
	Domain int    `json:"domain"`

	Users   int            `json:"users,omitempty"`
	Models  []ModelConfig  `json:"models,omitempty"`
	Cohorts []CohortConfig `json:"cohorts,omitempty"`

	// ModelRevision records the bundle revision model refs resolved
	// from. It is set by the server during resolution (a client-supplied
	// value is overwritten) and rides the persisted config so restores
	// and summaries report the provenance of the session's models.
	ModelRevision string `json:"model_revision,omitempty"`

	// Noise is "laplace" (default) or "geometric".
	Noise string `json:"noise,omitempty"`
	// Sensitivity overrides the query sensitivity when positive.
	Sensitivity float64 `json:"sensitivity,omitempty"`
	// Seed makes the noise stream reproducible when non-zero. Unlike
	// the library CLIs, the service defaults to an *unpredictable*
	// seed: a long-running server whose noise an observer can replay
	// offers no privacy at all, so determinism is the explicit opt-in.
	Seed int64 `json:"seed,omitempty"`

	Plan *PlanConfig `json:"plan,omitempty"`
}

// noiseKind parses the wire name of a noise primitive.
func noiseKind(name string) (release.Noise, error) {
	switch name {
	case "", "laplace":
		return release.LaplaceNoise, nil
	case "geometric":
		return release.GeometricNoise, nil
	default:
		return 0, fmt.Errorf("service: unknown noise kind %q (want laplace or geometric)", name)
	}
}

// noiseName is the inverse of noiseKind for summaries.
func noiseName(n release.Noise) string {
	if n == release.GeometricNoise {
		return "geometric"
	}
	return "laplace"
}

// Resource ceilings for one session. A create request is a few bytes
// but names its allocation sizes, so both must be bounded before
// anything is allocated: maxUsers caps the per-user bookkeeping
// (~40 B/user, so ~400 MB at the cap) and maxDomain caps the per-step
// histogram.
const (
	maxUsers  = 10_000_000
	maxDomain = 1_000_000
)

// population returns the declared user count without allocating
// anything — the registry's aggregate capacity check runs before Build
// so an over-cap request never triggers the allocation it names.
// Nonsense declarations clamp to maxUsers+1 (rejected later with a
// precise error by models()).
func (c *SessionConfig) population() int {
	switch {
	case len(c.Cohorts) > 0:
		total := 0
		for _, co := range c.Cohorts {
			if co.Users > maxUsers || co.Users < 0 {
				return maxUsers + 1
			}
			if total += co.Users; total > maxUsers {
				return maxUsers + 1
			}
		}
		return total
	case len(c.Models) > 0:
		return len(c.Models)
	default:
		return c.Users
	}
}

// models expands the population declaration into one adversary model
// per user.
func (c *SessionConfig) models() ([]stream.AdversaryModel, error) {
	if refs := c.modelRefs(); len(refs) > 0 {
		// Build without a preceding resolveRefs (Registry.Create does it;
		// a bare Build cannot — it has no bundle to resolve against).
		return nil, fmt.Errorf("%w: unresolved model ref %q", ErrModelNotFound, refs[0].Ref)
	}
	if c.Domain > maxDomain {
		return nil, fmt.Errorf("service: domain %d exceeds the per-session limit %d", c.Domain, maxDomain)
	}
	declared := 0
	if len(c.Cohorts) > 0 {
		declared++
	}
	if len(c.Models) > 0 {
		declared++
	}
	if declared > 1 {
		return nil, fmt.Errorf("service: declare the population as cohorts or models, not both")
	}
	switch {
	case len(c.Cohorts) > 0:
		total := 0
		for i, co := range c.Cohorts {
			if co.Users <= 0 {
				return nil, fmt.Errorf("service: cohort %d must have a positive user count, got %d", i, co.Users)
			}
			total += co.Users
			if total > maxUsers {
				return nil, fmt.Errorf("service: population exceeds the per-session limit %d", maxUsers)
			}
		}
		if c.Users != 0 && c.Users != total {
			return nil, fmt.Errorf("service: users field says %d but cohorts sum to %d", c.Users, total)
		}
		models := make([]stream.AdversaryModel, 0, total)
		for _, co := range c.Cohorts {
			m := co.Model.adversary()
			for i := 0; i < co.Users; i++ {
				models = append(models, m)
			}
		}
		return models, nil
	case len(c.Models) > 0:
		if len(c.Models) > maxUsers {
			return nil, fmt.Errorf("service: population %d exceeds the per-session limit %d", len(c.Models), maxUsers)
		}
		if c.Users != 0 && c.Users != len(c.Models) {
			return nil, fmt.Errorf("service: users field says %d but %d models declared", c.Users, len(c.Models))
		}
		models := make([]stream.AdversaryModel, len(c.Models))
		for i, m := range c.Models {
			models[i] = m.adversary()
		}
		return models, nil
	default:
		if c.Users <= 0 {
			return nil, fmt.Errorf("service: need a population: users, models, or cohorts")
		}
		if c.Users > maxUsers {
			return nil, fmt.Errorf("service: population %d exceeds the per-session limit %d", c.Users, maxUsers)
		}
		return make([]stream.AdversaryModel, c.Users), nil
	}
}

// modelRefs collects pointers to every ModelConfig in the population
// declaration (and the plan override) that names a bundle model.
func (c *SessionConfig) modelRefs() []*ModelConfig {
	var refs []*ModelConfig
	add := func(m *ModelConfig) {
		if m.Ref != "" {
			refs = append(refs, m)
		}
	}
	for i := range c.Models {
		add(&c.Models[i])
	}
	for i := range c.Cohorts {
		add(&c.Cohorts[i].Model)
	}
	if c.Plan != nil && c.Plan.Model != nil {
		add(c.Plan.Model)
	}
	return refs
}

// resolveRefs rewrites every bundle-model ref in the config to the
// chains it names in the cache's active named revision, recording that
// revision in ModelRevision. All refs resolve against one revision (a
// single atomic read), even while a bundle activation races. With no
// refs the config is untouched and ModelRevision is cleared — the
// field is server-assigned, never client-supplied.
func (c *SessionConfig) resolveRefs(cache *stream.ModelCache) error {
	refs := c.modelRefs()
	c.ModelRevision = ""
	if len(refs) == 0 {
		return nil
	}
	names := make([]string, len(refs))
	for i, m := range refs {
		if m.Backward != nil || m.Forward != nil {
			return fmt.Errorf("service: model declares both ref %q and inline chains; pick one", m.Ref)
		}
		names[i] = m.Ref
	}
	if cache == nil {
		return fmt.Errorf("%w: no model bundle active (refs %v)", ErrModelNotFound, names)
	}
	revision, models, missing := cache.ResolveNamed(names)
	if missing != nil {
		if revision == "" {
			return fmt.Errorf("%w: no model bundle active (refs %v)", ErrModelNotFound, missing)
		}
		return fmt.Errorf("%w: bundle revision %s has no model %v", ErrModelNotFound, revision, missing)
	}
	for i, m := range refs {
		m.Ref = ""
		m.Backward = models[i].Backward
		m.Forward = models[i].Forward
	}
	c.ModelRevision = revision
	return nil
}

// firstModel returns the first user's adversary model without
// expanding the whole population — boot-time restores rebuild plans
// from the stored config and only need the plan's default correlation
// source.
func (c *SessionConfig) firstModel() stream.AdversaryModel {
	switch {
	case len(c.Cohorts) > 0:
		return c.Cohorts[0].Model.adversary()
	case len(c.Models) > 0:
		return c.Models[0].adversary()
	default:
		return stream.AdversaryModel{}
	}
}

// buildPlan constructs the configured release plan. first is the first
// user's model, the default correlation source.
func (p *PlanConfig) buildPlan(first stream.AdversaryModel) (release.Plan, error) {
	pb, pf := first.Backward, first.Forward
	if p.Model != nil {
		pb, pf = p.Model.Backward, p.Model.Forward
	}
	switch p.Kind {
	case "upper-bound":
		return release.UpperBound(pb, pf, p.Alpha)
	case "quantified":
		if p.Horizon <= 0 {
			return nil, fmt.Errorf("service: quantified plan needs a positive horizon, got %d", p.Horizon)
		}
		return release.Quantified(pb, pf, p.Alpha, p.Horizon)
	case "w-event":
		if p.W <= 0 {
			return nil, fmt.Errorf("service: w-event plan needs a positive w, got %d", p.W)
		}
		return release.WEvent(pb, pf, p.Alpha, p.W)
	default:
		return nil, fmt.Errorf("service: unknown plan kind %q (want upper-bound, quantified or w-event)", p.Kind)
	}
}

// Build assembles the configured stream.Server with a private
// compiled-model cache. The registry uses BuildCached so sessions share
// compiled correlation models.
func (c *SessionConfig) Build() (*stream.Server, error) {
	return c.BuildCached(nil)
}

// BuildCached assembles the configured stream.Server, deduplicating
// compiled correlation models through the given cache (nil for a
// private one). Sessions declaring content-identical chains — the
// common case when many tenants defend against the same public road
// map — then share one compiled leakage engine per distinct matrix.
func (c *SessionConfig) BuildCached(cache *stream.ModelCache) (*stream.Server, error) {
	models, err := c.models()
	if err != nil {
		return nil, err
	}
	srv, err := stream.NewServerCached(c.Domain, len(models), models, nil, cache)
	if err != nil {
		return nil, err
	}
	// Both paths go through the stream package's tracked noise seam so
	// snapshots can record the stream position. An explicit config seed
	// is the reproducibility opt-in and is restored exactly across
	// restarts; the entropy default stays unpredictable — its seed is
	// withheld from snapshots and a restore re-seeds (recorded as
	// "reseeded" provenance).
	if c.Seed != 0 {
		srv.SetNoiseSeed(c.Seed)
	} else {
		seed, err := randomSeed()
		if err != nil {
			return nil, err
		}
		srv.SetEphemeralNoiseSeed(seed)
	}
	if c.Sensitivity != 0 {
		if err := srv.SetSensitivity(c.Sensitivity); err != nil {
			return nil, err
		}
	}
	noise, err := noiseKind(c.Noise)
	if err != nil {
		return nil, err
	}
	if err := srv.SetNoise(noise); err != nil {
		return nil, err
	}
	if c.Plan != nil {
		plan, err := c.Plan.buildPlan(models[0])
		if err != nil {
			return nil, err
		}
		srv.SetPlan(plan)
	}
	return srv, nil
}
