package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stream"
)

// slowParse is the reference: the strict encoding/json decode of one
// step object.
func slowParse(line []byte) (stream.BatchStep, error) {
	var ws wireStep
	if err := json.Unmarshal(line, &ws); err != nil {
		return stream.BatchStep{}, err
	}
	return stream.BatchStep(ws), nil
}

// TestFastParseStepDifferential: every line the fast path accepts must
// decode to exactly what encoding/json produces; every line it bails
// on must either be rejected by the slow path too or at least be
// decodable there (the fallback keeps behavior identical either way).
func TestFastParseStepDifferential(t *testing.T) {
	accept := []string{
		`{"values":[0,1,2,3],"eps":0.5}`,
		`{"eps":0.5,"values":[0,1]}`,
		`{"counts":[10,0,5],"eps":1e-3}`,
		`{"values":[]}`,
		`{"values":[-1,7]}`,
		`  {"values":[0]}  `,
		`{"values":[ 0 , 1 ]}`,
		`{}`,
		`{"eps":2.5E2}`,
		`{"eps":1e-3}`,
		`{"eps":0.25}`,
		`{"values":[-0,0]}`,
		`{"counts":[1000000,0]}`,
	}
	for _, line := range accept {
		st, ok := fastParseStep([]byte(line), new(batchArena))
		if !ok {
			t.Fatalf("fast path bailed on %q", line)
		}
		want, err := slowParse([]byte(line))
		if err != nil {
			t.Fatalf("slow path rejected %q: %v", line, err)
		}
		if !stepsEqual(st, want) {
			t.Fatalf("%q: fast %+v != slow %+v", line, st, want)
		}
	}

	// Lines the fast path must hand to the slow path (which then decides).
	bail := []string{
		`{"values":[0.5]}`,           // float in an int array
		`{"values":[1e3]}`,           // exponent in an int array
		`{"vals":[0]}`,               // unknown field -> slow path rejects
		`{"values":[0],"x":1}`,       // unknown second field
		`{"values":[0]} {"eps":1}`,   // two objects on one line
		`{"values":[0],"eps":"x"}`,   // non-numeric eps
		`{"valu\u0065s":[0]}`,        // escaped key (the slow path accepts it)
		`{"values":[0]`,              // truncated (object spans lines)
		`[{"values":[0]}]`,           // an array, not an object
		`{"values":[0],"eps":1,}`,    // trailing comma
		`{"values":[9999999999999]}`, // implausibly large int
		`{"eps":1,"eps":2}`,          // duplicate key
		`{"eps":.5}`,                 // not a JSON number (ParseFloat would take it)
		`{"eps":5.}`,                 // trailing dot
		`{"eps":+1}`,                 // leading plus
		`{"eps":01}`,                 // leading zero
		`{"eps":1e}`,                 // empty exponent
		`{"values":[007]}`,           // leading-zero int literal
		`{"values":[0x1]}`,           // hex (ParseFloat would take it)
	}
	for _, line := range bail {
		if _, ok := fastParseStep([]byte(line), new(batchArena)); ok {
			t.Fatalf("fast path accepted %q", line)
		}
	}
}

// TestFastParseStepRandomized fuzzes well-formed random step lines and
// checks fast/slow agreement.
func TestFastParseStepRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		var line string
		kind := rng.Intn(3)
		n := rng.Intn(6)
		arr := make([]int, n)
		for j := range arr {
			arr[j] = rng.Intn(100) - 10
		}
		raw, _ := json.Marshal(arr)
		switch kind {
		case 0:
			line = fmt.Sprintf(`{"values":%s,"eps":%g}`, raw, rng.Float64())
		case 1:
			line = fmt.Sprintf(`{"counts":%s}`, raw)
		default:
			line = fmt.Sprintf(`{"eps":%g,"values":%s}`, rng.Float64()*100, raw)
		}
		st, ok := fastParseStep([]byte(line), new(batchArena))
		if !ok {
			t.Fatalf("fast path bailed on generated %q", line)
		}
		want, err := slowParse([]byte(line))
		if err != nil {
			t.Fatalf("slow path rejected generated %q: %v", line, err)
		}
		if !stepsEqual(st, want) {
			t.Fatalf("%q: fast %+v != slow %+v", line, st, want)
		}
	}
}

func stepsEqual(a, b stream.BatchStep) bool {
	if !reflect.DeepEqual(a.Values, b.Values) || !reflect.DeepEqual(a.Counts, b.Counts) {
		return false
	}
	if (a.Eps == nil) != (b.Eps == nil) {
		return false
	}
	return a.Eps == nil || *a.Eps == *b.Eps
}
