// Package service turns the in-process continuous-release library
// (internal/stream) into a long-running multi-tenant server: the
// trusted aggregator of the paper's Fig. 1 operated as a JSON HTTP
// service instead of a batch CLI.
//
// The unit of tenancy is the session: one named, independently
// configured stream.Server — value domain, per-user (or per-cohort)
// adversary models, noise kind, optional release plan. Sessions live
// in a concurrency-safe Registry and are driven over a stdlib-only
// net/http API:
//
//	GET    /healthz                          liveness: sessions, users, uptime, persistence health
//	GET    /v1/sessions                      list session summaries
//	POST   /v1/sessions                      create a session (SessionConfig JSON)
//	GET    /v1/sessions/{name}               one session summary
//	DELETE /v1/sessions/{name}               drop a session (and its persisted state)
//	POST   /v1/sessions/{name}/steps         collect one time step (explicit eps or planned)
//	POST   /v1/sessions/{name}/snapshot      force a durable snapshot now (409 in ephemeral mode)
//	GET    /v1/sessions/{name}/published     release history (?t= for one step)
//	GET    /v1/sessions/{name}/tpl?user=U    per-user TPL series
//	GET    /v1/sessions/{name}/wevent?w=W    w-window leakage (?user=U, else population worst)
//	GET    /v1/sessions/{name}/report        the Definition-8 guarantee summary
//
// The tpl, wevent and report endpoints accept ?format=jsonl and then
// answer in internal/report's JSON-lines wire format, so API responses
// parse back with report.ParseJSONLines and drop into the same
// documents as the experiment harness output.
//
// Scale comes from the cohort-sharded accounting in internal/stream:
// a session declares its million-user population as a handful of
// cohorts (users sharing an adversary model share an accountant), so
// collecting a step costs one accountant update per distinct model,
// not per user.
//
// Durability is opt-in per process (tplserved -state-dir): the
// registry then snapshots each session's full accounting state
// (coalesced, atomically replaced) and journals every published step
// through internal/persist, restores all sessions on boot from the
// last snapshot plus the journal tail, and survives SIGKILL with a
// bit-identical leakage series — see DESIGN.md §6, including the
// noise-reseed provenance caveat for entropy-seeded sessions.
package service
