// Package service turns the in-process continuous-release library
// (internal/stream) into a long-running multi-tenant server: the
// trusted aggregator of the paper's Fig. 1 operated as an HTTP
// service instead of a batch CLI.
//
// The unit of tenancy is the session: one named, independently
// configured stream.Server — value domain, per-user (or per-cohort)
// adversary models, noise kind, optional release plan. Sessions live
// in a concurrency-safe Registry and are driven over a stdlib-only
// net/http API with two wire versions on one endpoint layer.
//
// # The v2 wire contract (current; see DESIGN.md §7)
//
//	GET    /healthz                          liveness: version, sessions, users, uptime, persistence health
//	GET    /v2/sessions                      list session summaries
//	POST   /v2/sessions                      create a session (SessionConfig JSON)
//	GET    /v2/sessions/{name}               one session summary
//	DELETE /v2/sessions/{name}               drop a session (and its persisted state)
//	POST   /v2/sessions/{name}/steps         BATCH step ingestion: a JSON array of steps, or an
//	                                         NDJSON stream (Content-Type: application/x-ndjson);
//	                                         each step carries "values" (per-user) or "counts"
//	                                         (pre-aggregated histogram) and an optional "eps";
//	                                         validated atomically — the batch lands whole or not
//	                                         at all; an Idempotency-Key header makes retries
//	                                         exactly-once (replays answer from history)
//	POST   /v2/sessions/{name}/snapshot      force a durable snapshot now (409 in ephemeral mode)
//	GET    /v2/sessions/{name}/published     release history, cursor-paginated (?cursor=&limit=)
//	GET    /v2/sessions/{name}/tpl?user=U    per-user TPL series, cursor-paginated
//	GET    /v2/sessions/{name}/wevent?w=W    w-window leakage (?user=U, else population worst)
//	GET    /v2/sessions/{name}/report        the Definition-8 guarantee summary
//	GET    /v2/sessions/{name}/watch         SSE stream: one TPL/BPL/FPL frame per published step
//	                                         (?from=T replays history after T, Last-Event-ID resumes)
//
// Errors are uniform RFC 7807 application/problem+json documents with
// stable machine-readable codes (problem.go): budget_exhausted,
// session_not_found, invalid_state, idempotency_conflict,
// unsupported_format (listing the supported values), and so on. The
// public tpl/client package wraps all of this in a typed Go SDK with
// automatic idempotency keys and retry-safe batching — new callers
// should use it rather than raw HTTP.
//
// # The v1 wire contract (deprecated)
//
// The original one-request-per-step API (/v1/sessions...) remains as
// thin shims over the same endpoint layer, parity-tested against v2
// (an identical workload produces bit-identical reports, TPL series
// and histograms). v1 responses carry "Deprecation: true" and a
// successor-version Link header. Its error bodies are the same
// problem+json documents; the legacy {"error": ...} member is kept for
// old clients.
//
// # Scale
//
// Scale comes from the cohort-sharded accounting in internal/stream —
// a million-user population declared as a handful of cohorts costs one
// accountant update per distinct model per step — and from batched
// ingestion: one v2 NDJSON request lands thousands of steps under a
// single lock acquisition, with a hand-rolled fast-path decoder
// (fastpath.go) for the hot step shape and a pre-aggregated "counts"
// form that removes the O(users) transport term entirely. BENCH_api.json
// records the resulting v1-vs-v2 ingest throughput.
//
// # Durability
//
// Durability is opt-in per process (tplserved -state-dir): the
// registry snapshots each session's full accounting state (coalesced,
// atomically replaced) and journals every ingestion batch — steps plus
// idempotency record, one checksummed journal record per batch —
// through internal/persist, restores all sessions on boot from the
// last snapshot plus the journal tail, and survives SIGKILL with a
// bit-identical leakage series; the idempotency memory survives with
// it, so a retry of a batch that landed just before a crash is
// replayed, not double-charged — see DESIGN.md §6 and §7.
package service
