package service

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/stream"
)

// TestEncodeBatchResponseEquivalence pins the hand-rolled batch
// response encoder to encoding/json: for any results (floats across
// the fixed/exponent boundary included), the arena encoder must emit
// byte-for-byte what writeJSON would have — clients must not be able
// to tell the fast encoder happened.
func TestEncodeBatchResponseEquivalence(t *testing.T) {
	floats := []float64{
		0, 1, -1, 0.5, -0.25, 1e-6, 9.999999e-7, 1e-7, -1e-7, 1e21, 1e20,
		-1e21, 2.5e22, 123456.789, 1.0 / 3.0, math.SmallestNonzeroFloat64,
		math.MaxFloat64, 42, -17.25, 3.14159265358979, 1e-300, 1e300,
	}
	cases := []struct {
		name     string
		results  []stream.StepResult
		replayed bool
	}{
		{
			name: "single",
			results: []stream.StepResult{
				{T: 1, Eps: 0.5, Planned: false, Published: []float64{1.5, -2.25, 0}},
			},
		},
		{
			name: "multi-planned-replayed",
			results: []stream.StepResult{
				{T: 7, Eps: 1e-3, Planned: true, Published: []float64{0.1}},
				{T: 8, Eps: 2.5, Planned: false, Published: []float64{}},
				{T: 9, Eps: 1.0 / 3.0, Planned: true, Published: floats},
			},
			replayed: true,
		},
		{
			name: "boundary-floats",
			results: []stream.StepResult{
				{T: 3, Eps: 1e-7, Published: floats},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := batchResponse{
				Results:  make([]stepResponse, len(tc.results)),
				Count:    len(tc.results),
				FirstT:   tc.results[0].T,
				LastT:    tc.results[len(tc.results)-1].T,
				Replayed: tc.replayed,
			}
			for i, r := range tc.results {
				ref.Results[i] = stepResponse{T: r.T, Eps: r.Eps, Planned: r.Planned, Published: r.Published}
			}
			var want bytes.Buffer
			enc := json.NewEncoder(&want)
			enc.SetEscapeHTML(false)
			if err := enc.Encode(ref); err != nil {
				t.Fatal(err)
			}
			a := getArena()
			defer a.release()
			got := a.encodeBatchResponse(tc.results, tc.replayed)
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("encoder mismatch:\n got  %s\n want %s", got, want.Bytes())
			}
		})
	}
}

// TestAppendJSONFloatEquivalence sweeps appendJSONFloat against
// json.Marshal over deterministic pseudo-random float64 bit patterns.
func TestAppendJSONFloatEquivalence(t *testing.T) {
	// xorshift64 so the sweep is reproducible without math/rand.
	x := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	checked := 0
	for i := 0; i < 20000; i++ {
		v := math.Float64frombits(next())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue // encoding/json rejects these; they cannot reach the encoder
		}
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONFloat(nil, v)
		if !bytes.Equal(got, want) {
			t.Fatalf("float %x (%v): got %s want %s", math.Float64bits(v), v, got, want)
		}
		checked++
	}
	if checked < 10000 {
		t.Fatalf("sweep degenerated: only %d finite floats", checked)
	}
}
