package service

import (
	"errors"
	"net/http"
	"sync"
	"testing"

	"repro/internal/markov"
	"repro/internal/stream"
)

// memSink collects decisions in memory for assertions.
type memSink struct {
	mu   sync.Mutex
	recs []Decision
}

func (m *memSink) Record(d Decision) {
	m.mu.Lock()
	m.recs = append(m.recs, d)
	m.mu.Unlock()
}

func (m *memSink) all() []Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Decision(nil), m.recs...)
}

// TestDecisionRecording drives every decision kind through CollectBatch
// and checks the audit records carry the span, budget, cohort digest
// and classification the log schema promises.
func TestDecisionRecording(t *testing.T) {
	reg := NewRegistry()
	sink := &memSink{}
	reg.SetDecisionSink(sink)
	cfg := persistTestConfig("audited", 11, false)
	// Horizon 5 and the plan attached at creation: the plan index
	// advances with *every* step, so after the three explicit-budget
	// steps below, exactly two planned steps remain.
	cfg.Plan = &PlanConfig{Kind: "quantified", Alpha: 1.0, Horizon: 5}
	s, err := reg.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// One explicit-budget step: a "steps" decision.
	if _, _, _, err := s.Collect([]int{0, 1, 0, 1, 0}, 0.2); err != nil {
		t.Fatal(err)
	}
	recs := sink.all()
	if len(recs) != 1 {
		t.Fatalf("%d decisions after one step, want 1", len(recs))
	}
	d := recs[0]
	if d.Kind != "steps" || d.Session != "audited" || d.FirstT != 1 || d.LastT != 1 || d.Steps != 1 {
		t.Fatalf("steps decision %+v", d)
	}
	if d.EpsSum != 0.2 || d.EpsMax != 0.2 {
		t.Fatalf("steps decision budget %+v", d)
	}
	if len(d.Cohorts) != s.Server().Cohorts() {
		t.Fatalf("%d cohort digests, want %d", len(d.Cohorts), s.Server().Cohorts())
	}
	want, err := s.Server().UserTPL(d.Cohorts[0].FirstUser, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cohorts[0].TPL != want {
		t.Fatalf("cohort digest TPL %v, want %v", d.Cohorts[0].TPL, want)
	}
	if d.Time.IsZero() {
		t.Fatal("steps decision has no timestamp")
	}

	// A keyed batch, then its replay: one "steps" with the key, one
	// "replay".
	e := 0.1
	batch := []stream.BatchStep{{Values: []int{1, 0, 1, 0, 1}, Eps: &e}, {Values: []int{0, 0, 0, 0, 0}, Eps: &e}}
	if _, _, err := s.CollectBatch("k1", batch); err != nil {
		t.Fatal(err)
	}
	if _, replayed, err := s.CollectBatch("k1", batch); err != nil || !replayed {
		t.Fatalf("replay: replayed=%v err=%v", replayed, err)
	}
	recs = sink.all()
	if len(recs) != 3 {
		t.Fatalf("%d decisions, want 3", len(recs))
	}
	if d := recs[1]; d.Kind != "steps" || d.IdemKey != "k1" || d.FirstT != 2 || d.LastT != 3 || d.EpsSum != 0.2 || d.EpsMax != 0.1 {
		t.Fatalf("keyed steps decision %+v", d)
	}
	if d := recs[2]; d.Kind != "replay" || d.IdemKey != "k1" || d.FirstT != 2 || d.LastT != 3 || d.Steps != 2 {
		t.Fatalf("replay decision %+v", d)
	}

	// Key reuse with a different body: a "refusal" with the idempotency
	// code, nothing charged.
	if _, _, err := s.CollectBatch("k1", batch[:1]); err == nil {
		t.Fatal("idempotency conflict accepted")
	}
	// Planned steps past the horizon: plan indices 4 and 5 land, the
	// next is refused with the budget code.
	for i := 0; i < 2; i++ {
		if _, _, _, err := s.CollectPlanned([]int{0, 1, 0, 1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := s.CollectPlanned([]int{0, 1, 0, 1, 0}); err == nil {
		t.Fatal("over-horizon step accepted")
	}
	recs = sink.all()
	if len(recs) != 7 {
		t.Fatalf("%d decisions, want 7", len(recs))
	}
	if d := recs[3]; d.Kind != "refusal" || d.Code != CodeIdempotencyConflict || d.IdemKey != "k1" {
		t.Fatalf("conflict refusal decision %+v", d)
	}
	if d := recs[6]; d.Kind != "refusal" || d.Code != CodeBudgetExhausted || d.Detail == "" {
		t.Fatalf("budget refusal decision %+v", d)
	}

	// Detaching the sink stops recording without touching the session.
	reg.SetDecisionSink(nil)
	if _, _, _, err := s.Collect([]int{0, 0, 0, 0, 0}, 0.1); err != nil {
		t.Fatal(err)
	}
	if n := len(sink.all()); n != 7 {
		t.Fatalf("%d decisions after detach, want 7", n)
	}
}

// TestModelRefs covers bundle-ref resolution: refs resolve against the
// active named revision, the resolved revision is pinned in the
// summary, and failure modes classify as model_not_found.
func TestModelRefs(t *testing.T) {
	chain, err := markov.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()

	// No bundle active: a ref cannot resolve.
	cfg := &SessionConfig{Name: "refs", Domain: 2, Cohorts: []CohortConfig{{Users: 2, Model: ModelConfig{Ref: "road"}}}}
	if _, err := reg.Create(cfg); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("create with no bundle: %v, want ErrModelNotFound", err)
	}
	if status, code := classify(ErrModelNotFound); status != http.StatusConflict || code != CodeModelNotFound {
		t.Fatalf("classify = %d %q", status, code)
	}

	reg.ModelCache().ActivateNamed("revA", map[string]stream.AdversaryModel{
		"road": {Backward: chain, Forward: chain},
	})

	// A missing name under an active revision names the revision.
	bad := &SessionConfig{Name: "refs", Domain: 2, Cohorts: []CohortConfig{{Users: 2, Model: ModelConfig{Ref: "ghost"}}}}
	if _, err := reg.Create(bad); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("create with missing name: %v", err)
	}
	// Ref plus inline chains is rejected.
	mixed := &SessionConfig{Name: "refs", Domain: 2, Models: []ModelConfig{{Ref: "road", Backward: chain}}}
	if _, err := reg.Create(mixed); err == nil {
		t.Fatal("ref+inline model accepted")
	}

	// A client-supplied revision is overwritten by the real one.
	cfg.ModelRevision = "forged"
	s, err := reg.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Summary().ModelRevision; got != "revA" {
		t.Fatalf("summary revision %q, want revA", got)
	}
	// The ref resolved to the bundle's chain: after a second step the
	// forward correlation lifts TPL at t=1 above the bare budget.
	for i := 0; i < 2; i++ {
		if _, _, _, err := s.Collect([]int{0, 1}, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	tpl, err := s.Server().UserTPL(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tpl <= 0.2 {
		t.Fatalf("resolved model shows no correlation: TPL %v", tpl)
	}
	// Inline-configured sessions report no revision.
	plain, err := reg.Create(&SessionConfig{Name: "plain", Domain: 2, Users: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Summary().ModelRevision; got != "" {
		t.Fatalf("inline session reports revision %q", got)
	}
}

// TestModelRefsRestore pins the restore invariant: refs are resolved at
// creation and the *resolved* config is persisted, so a restore —
// possibly under a different active bundle, or none — rebuilds exactly
// the models the session was created with.
func TestModelRefsRestore(t *testing.T) {
	chain, err := markov.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	other, err := markov.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	r1 := durableRegistry(t, dir, 4)
	r1.ModelCache().ActivateNamed("revA", map[string]stream.AdversaryModel{
		"road": {Backward: chain, Forward: chain},
	})
	cfg := &SessionConfig{
		Name:    "refs",
		Domain:  2,
		Cohorts: []CohortConfig{{Users: 2, Model: ModelConfig{Ref: "road"}}},
		Seed:    9,
		Plan:    &PlanConfig{Kind: "upper-bound", Alpha: 2.0, Model: &ModelConfig{Ref: "road"}},
	}
	s1, err := r1.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, _, err := s1.CollectPlanned([]int{i % 2, (i + 1) % 2}); err != nil {
			t.Fatal(err)
		}
	}

	// Restore under a *different* active bundle: the session must come
	// back with revA's chains and revision, not revB's.
	r2 := durableRegistry(t, dir, 4)
	r2.ModelCache().ActivateNamed("revB", map[string]stream.AdversaryModel{
		"road": {Backward: other, Forward: other},
	})
	restored, failed := r2.RestoreAll()
	if len(failed) > 0 || len(restored) != 1 {
		t.Fatalf("restored %v failed %v", restored, failed)
	}
	s2, err := r2.Get("refs")
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Summary().ModelRevision; got != "revA" {
		t.Fatalf("restored revision %q, want revA", got)
	}
	mustMatchSessions(t, s1, s2)
	// And the restored session keeps accounting with revA's model: the
	// next planned step matches on both sides bit for bit.
	pa, _, _, err := s1.CollectPlanned([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	pb, _, _, err := s2.CollectPlanned([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("post-restore step diverged: %v vs %v", pa, pb)
		}
	}
}
