package service

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/stream"
)

// FuzzArenaDecodeRecycling is the pooled-decoder safety fuzzer: it
// pushes arbitrary NDJSON through a DIRTY, recycled arena and requires
// the result to be indistinguishable from a fresh decode — same steps
// (deep-equal, including values/counts carved from the int slab and eps
// boxed in the eps slab) or the same decision to fail. The arena is
// dirtied two ways before the interesting decode: its slabs are filled
// with 0xFF garbage at full capacity, and a sacrificial canary batch is
// decoded and released through it first — so any stale length, aliased
// BatchStep slice, or un-truncated slab from a previous request shows
// up as corrupted output here.
func FuzzArenaDecodeRecycling(f *testing.F) {
	f.Add([]byte(`{"counts":[1,2,3],"eps":0.5}`))
	f.Add([]byte(`{"values":[0,1,1,0]}` + "\n" + `{"values":[1,1,0,0],"eps":0.25}`))
	f.Add([]byte(`{"counts":[5],"eps":1e-7}` + "\n\n" + `{"counts":[7]}`))
	f.Add([]byte(`{"counts":[1], "unknown":true}`))
	f.Add([]byte(`{"counts":[1],"eps":`))
	f.Add([]byte("not json\n{\"counts\":[2],\"eps\":0.1}"))
	f.Add([]byte("\n \n\t\n"))
	f.Add([]byte(`{"values":[9223372036854775807],"eps":-0.5}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Reference: a pristine arena decoding a private copy of raw.
		rawCopy := append([]byte(nil), raw...)
		fresh := new(batchArena)
		wantSteps, wantErr := fresh.decodeNDJSONArena(rawCopy)
		want := snapshotSteps(wantSteps)

		// Candidate: an arena that has already lived a little.
		dirty := new(batchArena)
		dirtyArena(dirty)
		canary := []byte(`{"counts":[11,22,33,44],"eps":0.125}` + "\n" + `{"values":[1,0,1,0]}`)
		if _, err := dirty.decodeNDJSONArena(canary); err != nil {
			t.Fatalf("canary decode: %v", err)
		}
		dirty.release()
		reclaimed := getArena() // usually the arena just released
		dirtyArena(reclaimed)
		gotSteps, gotErr := reclaimed.decodeNDJSONArena(raw)
		got := snapshotSteps(gotSteps)

		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("recycled arena changed the outcome: fresh err=%v, recycled err=%v", wantErr, gotErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("recycled arena leaked state into the decode:\nfresh:    %v\nrecycled: %v", want, got)
		}
		reclaimed.release()
	})
}

// dirtyArena fills every slab of a (released or fresh) arena with
// garbage up to its full capacity, then restores the empty lengths — a
// decoder that reads one stale byte past what it wrote will see 0xFF
// (or a poisoned step), not zeroes.
func dirtyArena(a *batchArena) {
	a.body = a.body[:cap(a.body)]
	for i := range a.body {
		a.body[i] = 0xFF
	}
	a.body = a.body[:0]
	a.ints = a.ints[:cap(a.ints)]
	for i := range a.ints {
		a.ints[i] = -1 << 62
	}
	a.ints = a.ints[:0]
	a.eps = a.eps[:cap(a.eps)]
	poison := -12345.6789
	for i := range a.eps {
		a.eps[i] = poison
	}
	a.eps = a.eps[:0]
	a.resp = a.resp[:cap(a.resp)]
	for i := range a.resp {
		a.resp[i] = 0xFF
	}
	a.resp = a.resp[:0]
	a.steps = a.steps[:cap(a.steps)]
	for i := range a.steps {
		a.steps[i] = stream.BatchStep{Values: []int{-1}, Counts: []int{-1}, Eps: &poison}
	}
	a.steps = a.steps[:0]
}

// snapshotSteps deep-copies decoded steps into a comparable, arena-free
// form (eps pointers flattened to values).
func snapshotSteps(steps []stream.BatchStep) []string {
	if steps == nil {
		return nil
	}
	out := make([]string, len(steps))
	for i, st := range steps {
		eps := "nil"
		if st.Eps != nil {
			eps = fmt.Sprintf("%x", *st.Eps)
		}
		out[i] = fmt.Sprintf("values=%v counts=%v eps=%s", st.Values, st.Counts, eps)
	}
	return out
}

// TestArenaReleaseZeroesSteps pins the release contract directly: after
// release, no pooled BatchStep retains a decoded slice and every slab
// is empty.
func TestArenaReleaseZeroesSteps(t *testing.T) {
	a := new(batchArena)
	if _, err := a.decodeNDJSONArena([]byte(`{"counts":[1,2],"eps":0.5}`)); err != nil {
		t.Fatal(err)
	}
	if len(a.steps) == 0 {
		t.Fatal("decode produced no steps")
	}
	a.release()
	b := getArena()
	if len(b.steps) != 0 || len(b.body) != 0 || len(b.ints) != 0 || len(b.eps) != 0 || len(b.resp) != 0 {
		t.Fatalf("released arena not empty: steps=%d body=%d ints=%d eps=%d resp=%d",
			len(b.steps), len(b.body), len(b.ints), len(b.eps), len(b.resp))
	}
	hidden := b.steps[:cap(b.steps)]
	for i, st := range hidden {
		if st.Values != nil || st.Counts != nil || st.Eps != nil {
			t.Fatalf("pooled step %d still references decoded memory: %+v", i, st)
		}
	}
	b.release()
}

// TestArenaOversizedSlabsDropped: slabs past the pooling caps must not
// be recycled (they would pin tens of MB per pooled arena).
func TestArenaOversizedSlabsDropped(t *testing.T) {
	a := new(batchArena)
	a.body = make([]byte, 0, maxPooledBody+1)
	a.ints = make([]int, 0, maxPooledInts+1)
	a.resp = make([]byte, 0, maxPooledResp+1)
	a.release()
	if a.body != nil || a.ints != nil || a.resp != nil {
		t.Fatalf("oversized slabs survived release: body=%d ints=%d resp=%d",
			cap(a.body), cap(a.ints), cap(a.resp))
	}
}

// deterministic seed-corpus run so the fuzz property is exercised on
// every plain `go test`, not only under -fuzz.
func TestArenaDecodeRecyclingSeeds(t *testing.T) {
	seeds := [][]byte{
		[]byte(`{"counts":[1,2,3],"eps":0.5}`),
		[]byte(`{"values":[0,1,1,0]}` + "\n" + `{"values":[1,1,0,0],"eps":0.25}`),
		[]byte(`{"counts":[5],"eps":1e-7}` + "\n\n" + `{"counts":[7]}`),
		[]byte(`{"counts":[1],"eps":`),
		[]byte("\n \n\t\n"),
	}
	for _, raw := range seeds {
		fresh := new(batchArena)
		wantSteps, wantErr := fresh.decodeNDJSONArena(append([]byte(nil), raw...))
		dirty := new(batchArena)
		dirtyArena(dirty)
		gotSteps, gotErr := dirty.decodeNDJSONArena(raw)
		if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(snapshotSteps(gotSteps), snapshotSteps(wantSteps)) {
			t.Fatalf("seed %q: fresh (%v, %v) != dirty (%v, %v)",
				bytes.TrimSpace(raw), snapshotSteps(wantSteps), wantErr, snapshotSteps(gotSteps), gotErr)
		}
	}
}
