package service

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/markov"
	"repro/internal/stream"
)

// TestBundleHotSwapUnderLoad is the management-plane race test:
// bundle activations flip the named model table while writers ingest
// against ref-model sessions over the real API and SSE watchers hold
// streams open. The contract under test: activation never rebinds a
// live session (each keeps the revision pinned at creation), ingest
// never fails, and a session created under a later revision reports
// that revision. Run under -race this also proves the swap path is
// data-race-free against the ingest hot path.
func TestBundleHotSwapUnderLoad(t *testing.T) {
	api := NewAPI()
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	cache := api.Registry().ModelCache()

	mk := func(rows [][]float64) *markov.Chain {
		c, err := markov.FromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	rev1 := map[string]stream.AdversaryModel{
		"road": {Backward: mk([][]float64{{0.8, 0.2}, {0.3, 0.7}}), Forward: mk([][]float64{{0.6, 0.4}, {0.1, 0.9}})},
	}
	rev2 := map[string]stream.AdversaryModel{
		"road": {Backward: mk([][]float64{{0.5, 0.5}, {0.5, 0.5}})},
	}
	cache.ActivateNamed("rev1", rev1)

	const writers = 4
	const batches = 25
	watchers := make([]chan struct{}, writers)
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("swap-%d", w)
		body := fmt.Sprintf(`{"name":%q,"domain":2,"cohorts":[{"users":2,"model":{"ref":"road"}},{"users":1,"model":{}}]}`, name)
		rec := doJSON(t, api.Handler(), "POST", "/v2/sessions", body, nil)
		if rec.Code != 201 {
			t.Fatalf("create %s: %d %s", name, rec.Code, rec.Body)
		}
		watchers[w] = openWatch(t, srv.URL, name)
	}

	// One activator flips revisions while the writers ingest.
	stopSwap := make(chan struct{})
	activatorDone := make(chan struct{})
	var swaps atomic.Int64
	go func() {
		defer close(activatorDone)
		for i := 0; ; i++ {
			select {
			case <-stopSwap:
				return
			default:
			}
			if i%2 == 0 {
				cache.ActivateNamed("rev2", rev2)
			} else {
				cache.ActivateNamed("rev1", rev1)
			}
			swaps.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	errs := make(chan error, writers)
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			h := api.Handler()
			name := fmt.Sprintf("swap-%d", w)
			for b := 0; b < batches; b++ {
				body := fmt.Sprintf(`[{"values":[%d,%d,%d],"eps":0.1},{"values":[%d,%d,%d],"eps":0.1}]`,
					b%2, (b+w)%2, (b+1)%2, (b+1)%2, w%2, b%2)
				rec := httptest.NewRecorder()
				req := httptest.NewRequest("POST", "/v2/sessions/"+name+"/steps", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					errs <- fmt.Errorf("writer %d batch %d: %d %s", w, b, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	writersDone := make(chan struct{})
	go func() {
		writerWG.Wait()
		close(writersDone)
	}()
	select {
	case <-writersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("writers never finished")
	}
	close(stopSwap)
	select {
	case <-activatorDone:
	case <-time.After(10 * time.Second):
		t.Fatal("activator never stopped")
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if swaps.Load() < 2 {
		t.Fatalf("only %d activations during the run", swaps.Load())
	}

	// Every in-flight session kept the revision pinned at creation and
	// accounted every step.
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("swap-%d", w)
		s, err := api.Registry().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sum := s.Summary()
		if sum.ModelRevision != "rev1" {
			t.Fatalf("%s rebound to revision %q mid-flight", name, sum.ModelRevision)
		}
		if sum.T != 2*batches {
			t.Fatalf("%s ended at t=%d, want %d", name, sum.T, 2*batches)
		}
	}

	// A session created now binds whatever revision is active now.
	cache.ActivateNamed("rev2", rev2)
	rec := doJSON(t, api.Handler(), "POST", "/v2/sessions",
		`{"name":"late","domain":2,"cohorts":[{"users":1,"model":{"ref":"road"}}]}`, nil)
	if rec.Code != 201 {
		t.Fatalf("late create: %d %s", rec.Code, rec.Body)
	}
	late, err := api.Registry().Get("late")
	if err != nil {
		t.Fatal(err)
	}
	if late.Summary().ModelRevision != "rev2" {
		t.Fatalf("late session revision %q, want rev2", late.Summary().ModelRevision)
	}

	// End the watch streams (deleting a session disconnects its
	// watchers) so the httptest server can close cleanly.
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("swap-%d", w)
		if rec := doJSON(t, api.Handler(), "DELETE", "/v2/sessions/"+name, "", nil); rec.Code != 204 {
			t.Fatalf("delete %s: %d", name, rec.Code)
		}
		select {
		case <-watchers[w]:
		case <-time.After(5 * time.Second):
			t.Fatalf("watch stream %d still open after delete", w)
		}
	}
}
