package service

import (
	"time"
)

// Decision logging: the audit seam of the accounting service. Every
// ingestion outcome — a batch of steps applied, a budget refusal, an
// idempotent replay — can be streamed to a DecisionSink so a fleet
// keeps a durable record of every privacy decision, not just the
// current accounting state. The hook is deliberately narrow: the hot
// path pays one atomic load when no sink is attached, and one
// freshly-allocated record handed to Record when one is. Sinks must
// never block (the decision-log plugin buffers and drops with a
// counter — see internal/plugins/logs).

// Decision is one audited accounting decision. One record covers one
// CollectBatch call — the unit both API versions and the SDK ingest by
// — so decision volume scales with requests, not steps.
type Decision struct {
	// Time is the server-side decision time.
	Time time.Time `json:"time"`
	// Session is the session name the decision applies to.
	Session string `json:"session"`
	// Kind is "steps" (batch applied), "refusal" (batch rejected,
	// nothing charged) or "replay" (idempotent re-answer, nothing
	// charged).
	Kind string `json:"kind"`
	// Steps is the number of time steps the batch carried.
	Steps int `json:"steps,omitempty"`
	// FirstT/LastT are the 1-based step span the batch landed
	// (kind "steps") or re-answered (kind "replay").
	FirstT int `json:"first_t,omitempty"`
	LastT  int `json:"last_t,omitempty"`
	// EpsSum/EpsMax aggregate the budget the batch charged.
	EpsSum float64 `json:"eps_sum,omitempty"`
	EpsMax float64 `json:"eps_max,omitempty"`
	// Cohorts digests the post-batch cumulative leakage per cohort
	// (kind "steps" only).
	Cohorts []DecisionCohort `json:"cohorts,omitempty"`
	// Code/Detail classify a refusal (the same stable problem code the
	// wire error carries).
	Code   string `json:"code,omitempty"`
	Detail string `json:"detail,omitempty"`
	// IdemKey is the Idempotency-Key of the batch, when one was given.
	IdemKey string `json:"idempotency_key,omitempty"`
	// ModelRevision is the bundle revision the session's models were
	// resolved from (empty for inline-configured sessions).
	ModelRevision string `json:"model_revision,omitempty"`
}

// DecisionCohort is one cohort's cumulative leakage at the batch's
// last step — TPL and its backward/forward components, per Definition
// 4 of the paper — plus the first user holding it.
type DecisionCohort struct {
	Cohort    int     `json:"cohort"`
	FirstUser int     `json:"first_user"`
	TPL       float64 `json:"tpl"`
	BPL       float64 `json:"bpl"`
	FPL       float64 `json:"fpl"`
}

// DecisionSink receives decisions. Record must not block and must not
// retain d.Cohorts beyond the call unless it owns the copy it was
// given (the service allocates a fresh slice per record, so retaining
// the record itself is fine).
type DecisionSink interface {
	Record(d Decision)
}

// sinkBox wraps the interface so an atomic.Pointer can publish it.
type sinkBox struct{ sink DecisionSink }

// SetDecisionSink attaches (or, with nil, detaches) the decision sink.
// Safe to call at any time; in-flight batches record to whichever sink
// the atomic load observed.
func (r *Registry) SetDecisionSink(sink DecisionSink) {
	if sink == nil {
		r.decisions.Store(nil)
		return
	}
	r.decisions.Store(&sinkBox{sink: sink})
}

// decisionSink returns the active sink, or nil. The single atomic load
// is the whole disabled-path cost.
func (s *Session) decisionSink() DecisionSink {
	if s.sink == nil {
		return nil
	}
	if box := s.sink.Load(); box != nil {
		return box.sink
	}
	return nil
}

// recordSteps emits the "steps" decision for a just-applied batch.
// Caller holds stepMu; the cohort digest queries the server's
// accountants directly (cheap: O(cohorts), no per-user work) and every
// slice is freshly allocated — nothing pooled escapes into the sink.
func (s *Session) recordSteps(sink DecisionSink, firstT, lastT int, epsSum, epsMax float64, steps int, key string) {
	d := Decision{
		Time:          s.now(),
		Session:       s.name,
		Kind:          "steps",
		Steps:         steps,
		FirstT:        firstT,
		LastT:         lastT,
		EpsSum:        epsSum,
		EpsMax:        epsMax,
		IdemKey:       key,
		ModelRevision: s.modelRevision,
	}
	if leaks, err := s.srv.CohortLeakages(lastT); err == nil {
		d.Cohorts = make([]DecisionCohort, len(leaks))
		for i, l := range leaks {
			d.Cohorts[i] = DecisionCohort{Cohort: l.Cohort, FirstUser: l.FirstUser, TPL: l.TPL, BPL: l.BPL, FPL: l.FPL}
		}
	}
	sink.Record(d)
}

// recordRefusal emits the "refusal" decision for a rejected batch,
// classified with the same stable problem code the wire error carries.
func (s *Session) recordRefusal(sink DecisionSink, steps int, key string, err error) {
	_, code := classify(err)
	sink.Record(Decision{
		Time:          s.now(),
		Session:       s.name,
		Kind:          "refusal",
		Steps:         steps,
		Code:          code,
		Detail:        err.Error(),
		IdemKey:       key,
		ModelRevision: s.modelRevision,
	})
}

// recordReplay emits the "replay" decision for an idempotent
// re-answer: nothing was charged, the record exists so the audit trail
// explains why a client saw a response without a matching charge.
func (s *Session) recordReplay(sink DecisionSink, firstT, lastT int, key string) {
	sink.Record(Decision{
		Time:          s.now(),
		Session:       s.name,
		Kind:          "replay",
		Steps:         lastT - firstT + 1,
		FirstT:        firstT,
		LastT:         lastT,
		IdemKey:       key,
		ModelRevision: s.modelRevision,
	})
}
