package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/persist"
)

// migrateHarness is two in-process shards (A durable, B ephemeral)
// plus raw HTTP helpers.
type migrateHarness struct {
	t        *testing.T
	apiA     *API
	apiB     *API
	srvA     *httptest.Server
	srvB     *httptest.Server
	stateDir string
}

func newMigrateHarness(t *testing.T) *migrateHarness {
	t.Helper()
	h := &migrateHarness{t: t, stateDir: t.TempDir()}
	h.apiA = NewAPI()
	store, err := persist.NewStore(h.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.apiA.Registry().EnablePersistence(store, 50); err != nil {
		t.Fatal(err)
	}
	h.apiB = NewAPI()
	h.srvA = httptest.NewServer(h.apiA.Handler())
	t.Cleanup(h.srvA.Close)
	h.srvB = httptest.NewServer(h.apiB.Handler())
	t.Cleanup(h.srvB.Close)
	return h
}

func (h *migrateHarness) post(base, path, body string, header map[string]string) (int, []byte) {
	h.t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func (h *migrateHarness) get(base, path string, out any) int {
	h.t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(b, out); err != nil {
			h.t.Fatalf("decoding %s: %v: %s", path, err, b)
		}
	}
	return resp.StatusCode
}

func decodeWrongShard(t *testing.T, body []byte) string {
	t.Helper()
	var p struct {
		Code     string `json:"code"`
		Location string `json:"location"`
	}
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("problem body %s: %v", body, err)
	}
	if p.Code != CodeWrongShard {
		t.Fatalf("code %q, want %s (%s)", p.Code, CodeWrongShard, body)
	}
	return p.Location
}

// TestMigrateMovesSession: the session keeps its exact state on the
// target, the source answers 421 wrong_shard with the new location,
// and a retried batch lands at the new home untouched by the refusal.
func TestMigrateMovesSession(t *testing.T) {
	h := newMigrateHarness(t)
	code, body := h.post(h.srvA.URL, "/v2/sessions", `{"name":"web","domain":2,"users":2,"seed":7}`, nil)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	for i := 0; i < 3; i++ {
		code, body = h.post(h.srvA.URL, "/v2/sessions/web/steps", `[{"values":[0,1],"eps":0.2}]`, nil)
		if code != http.StatusOK {
			t.Fatalf("steps: %d %s", code, body)
		}
	}
	var before reportResponse
	if code := h.get(h.srvA.URL, "/v2/sessions/web/report", &before); code != http.StatusOK {
		t.Fatalf("report before: %d", code)
	}

	code, body = h.post(h.srvA.URL, "/v2/sessions/web/migrate", `{"target":"`+h.srvB.URL+`"}`, nil)
	if code != http.StatusOK {
		t.Fatalf("migrate: %d %s", code, body)
	}
	var mig struct {
		Name     string `json:"name"`
		Location string `json:"location"`
	}
	if err := json.Unmarshal(body, &mig); err != nil || mig.Name != "web" || mig.Location != h.srvB.URL {
		t.Fatalf("migrate response %s", body)
	}

	// Target serves the session with identical accounting state.
	var after reportResponse
	if code := h.get(h.srvB.URL, "/v2/sessions/web/report", &after); code != http.StatusOK {
		t.Fatalf("report on target: %d", code)
	}
	if before != after {
		t.Fatalf("report changed across migration:\n  before %+v\n  after  %+v", before, after)
	}
	var sum Summary
	if h.get(h.srvB.URL, "/v2/sessions/web", &sum); sum.T != 3 || sum.Users != 2 {
		t.Fatalf("summary on target %+v", sum)
	}

	// Source refuses with the new location — reads and writes alike.
	code, body = h.post(h.srvA.URL, "/v2/sessions/web/steps", `[{"values":[1,0],"eps":0.1}]`, map[string]string{"Idempotency-Key": "k9"})
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("post to old owner: %d %s", code, body)
	}
	if loc := decodeWrongShard(t, body); loc != h.srvB.URL {
		t.Fatalf("location %q, want %s", loc, h.srvB.URL)
	}
	resp, err := http.Get(h.srvA.URL + "/v2/sessions/web")
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("get from old owner: %d %s", resp.StatusCode, gb)
	}
	decodeWrongShard(t, gb)

	// The refused batch retries cleanly at the new home: nothing was
	// double-applied.
	code, body = h.post(h.srvB.URL, "/v2/sessions/web/steps", `[{"values":[1,0],"eps":0.1}]`, map[string]string{"Idempotency-Key": "k9"})
	if code != http.StatusOK {
		t.Fatalf("retry at new owner: %d %s", code, body)
	}
	if h.get(h.srvB.URL, "/v2/sessions/web", &sum); sum.T != 4 {
		t.Fatalf("T after retry %d, want 4", sum.T)
	}
}

// TestMigrateTombstoneSurvivesRestart: the wrong_shard redirect
// outlives a crash of the source shard.
func TestMigrateTombstoneSurvivesRestart(t *testing.T) {
	h := newMigrateHarness(t)
	if code, body := h.post(h.srvA.URL, "/v2/sessions", `{"name":"web","domain":2,"users":1}`, nil); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	if code, body := h.post(h.srvA.URL, "/v2/sessions/web/migrate", `{"target":"`+h.srvB.URL+`"}`, nil); code != http.StatusOK {
		t.Fatalf("migrate: %d %s", code, body)
	}

	// "Crash" the source and restore a fresh registry from its state dir.
	r2 := durableRegistry(t, h.stateDir, 50)
	if restored, failed := r2.RestoreAll(); len(restored) != 0 || len(failed) != 0 {
		t.Fatalf("restore after migration: restored %v failed %v", restored, failed)
	}
	_, err := r2.Get("web")
	var ws *WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("restored source answered %v, want WrongShardError", err)
	}
	if ws.Location != h.srvB.URL {
		t.Fatalf("tombstone location %q, want %s", ws.Location, h.srvB.URL)
	}

	// Re-creating the name reclaims it and clears the tombstone.
	if _, err := r2.Create(&SessionConfig{Name: "web", Domain: 2, Users: 1}); err != nil {
		t.Fatalf("recreate over tombstone: %v", err)
	}
	if _, err := r2.Get("web"); err != nil {
		t.Fatalf("get after recreate: %v", err)
	}
}

// TestMigrateFailureLeavesSourceAuthoritative: an unreachable target
// means 502 migrate_failed and the session keeps serving at the source.
func TestMigrateFailureLeavesSourceAuthoritative(t *testing.T) {
	h := newMigrateHarness(t)
	if code, body := h.post(h.srvA.URL, "/v2/sessions", `{"name":"web","domain":2,"users":1}`, nil); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	code, body := h.post(h.srvA.URL, "/v2/sessions/web/migrate", `{"target":"http://127.0.0.1:1"}`, nil)
	if code != http.StatusBadGateway {
		t.Fatalf("migrate to dead target: %d %s", code, body)
	}
	var p struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &p) != nil || p.Code != CodeMigrateFailed {
		t.Fatalf("problem %s", body)
	}
	if code, body := h.post(h.srvA.URL, "/v2/sessions/web/steps", `[{"values":[1],"eps":0.1}]`, nil); code != http.StatusOK {
		t.Fatalf("post after failed migrate: %d %s", code, body)
	}
}

// TestImportConflictRefused: a migration push for a name the target
// already owns is refused without touching the incumbent.
func TestImportConflictRefused(t *testing.T) {
	h := newMigrateHarness(t)
	for _, base := range []string{h.srvA.URL, h.srvB.URL} {
		if code, body := h.post(base, "/v2/sessions", `{"name":"web","domain":2,"users":1}`, nil); code != http.StatusCreated {
			t.Fatalf("create: %d %s", code, body)
		}
	}
	code, body := h.post(h.srvA.URL, "/v2/sessions/web/migrate", `{"target":"`+h.srvB.URL+`"}`, nil)
	if code != http.StatusBadGateway {
		t.Fatalf("conflicting migrate: %d %s", code, body)
	}
	// Source kept the session (the push was refused before handoff).
	if code := h.get(h.srvA.URL, "/v2/sessions/web", nil); code != http.StatusOK {
		t.Fatalf("source lost the session: %d", code)
	}
	// Target incumbent untouched.
	var sum Summary
	if h.get(h.srvB.URL, "/v2/sessions/web", &sum); sum.T != 0 {
		t.Fatalf("incumbent mutated: %+v", sum)
	}
}

// TestMigrateValidation: bad targets are rejected up front.
func TestMigrateValidation(t *testing.T) {
	h := newMigrateHarness(t)
	if code, body := h.post(h.srvA.URL, "/v2/sessions", `{"name":"web","domain":2,"users":1}`, nil); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	for _, target := range []string{"", "ftp://x", "not a url"} {
		code, _ := h.post(h.srvA.URL, "/v2/sessions/web/migrate", `{"target":"`+target+`"}`, nil)
		if code != http.StatusBadRequest {
			t.Errorf("target %q: status %d, want 400", target, code)
		}
	}
	if code, _ := h.post(h.srvA.URL, "/v2/sessions/ghost/migrate", `{"target":"http://x:1"}`, nil); code != http.StatusNotFound {
		t.Errorf("missing session migrate: %d, want 404", code)
	}
}
