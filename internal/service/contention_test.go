package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestContendedIngest is the striped-registry race test: many sessions,
// each with several concurrent batch writers, plus readers and
// create/delete churn, all hammering the HTTP surface at once. Under
// -race this exercises every contended structure of the hot path — the
// stripe locks, the atomic capacity accounting, the arena pool, the
// idempotency memory and the per-session step lock. Correctness checks
// are deliberately coarse (final step counts), because the point is the
// interleaving, not the values.
func TestContendedIngest(t *testing.T) {
	api := NewAPI()
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()
	c := ts.Client()

	do := func(method, path, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	const (
		sessions  = 6
		writers   = 4 // concurrent batch writers per session
		perWriter = 8 // batches per writer
		batchLen  = 4
	)
	name := func(i int) string { return fmt.Sprintf("contend-%d", i) }
	for i := 0; i < sessions; i++ {
		cfg := fmt.Sprintf(`{"name":%q,"domain":2,"users":10,"seed":%d}`, name(i), 100+i)
		if code, body := do("POST", "/v2/sessions", cfg); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", name(i), code, body)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan string, sessions*writers+sessions+16)

	// Writers: each posts its own idempotency-keyed batches. Concurrent
	// writers to ONE session serialize on the step lock; writers across
	// sessions ride different stripes.
	batchBody := strings.Repeat(`{"counts":[3,7],"eps":0.1}`+"\n", batchLen)
	for i := 0; i < sessions; i++ {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := 0; b < perWriter; b++ {
					req, err := http.NewRequest("POST", ts.URL+"/v2/sessions/"+name(i)+"/steps", strings.NewReader(batchBody))
					if err != nil {
						errc <- err.Error()
						return
					}
					req.Header.Set("Content-Type", "application/x-ndjson")
					req.Header.Set("Idempotency-Key", fmt.Sprintf("w%d-b%d", w, b))
					if w%2 == 0 {
						req.Header.Set("Prefer", "return=minimal")
					}
					resp, err := c.Do(req)
					if err != nil {
						errc <- err.Error()
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Sprintf("%s write: %d %s", name(i), resp.StatusCode, body)
						return
					}
				}
			}()
		}
	}

	// Readers: published history, reports, session list — all while the
	// writers run.
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if code, body := do("GET", "/v2/sessions/"+name(i)+"/published?limit=5", ""); code != http.StatusOK {
					errc <- fmt.Sprintf("%s read: %d %s", name(i), code, body)
					return
				}
				if code, _ := do("GET", "/v2/sessions", ""); code != http.StatusOK {
					errc <- fmt.Sprintf("list: %d", code)
					return
				}
			}
		}()
	}

	// Churn: sessions created and deleted concurrently with the ingest,
	// landing on arbitrary stripes.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				n := fmt.Sprintf("churn-%d-%d", g, k)
				cfg := fmt.Sprintf(`{"name":%q,"domain":2,"users":5}`, n)
				if code, body := do("POST", "/v2/sessions", cfg); code != http.StatusCreated {
					errc <- fmt.Sprintf("churn create: %d %s", code, body)
					return
				}
				if code, body := do("POST", "/v2/sessions/"+n+"/steps", `[{"counts":[2,3],"eps":0.2}]`); code != http.StatusOK {
					errc <- fmt.Sprintf("churn step: %d %s", code, body)
					return
				}
				if code, body := do("DELETE", "/v2/sessions/"+n, ""); code != http.StatusNoContent {
					errc <- fmt.Sprintf("churn delete: %d %s", code, body)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}
	if t.Failed() {
		return
	}

	// Every acknowledged batch landed exactly once.
	wantT := writers * perWriter * batchLen
	for i := 0; i < sessions; i++ {
		s, err := api.Registry().Get(name(i))
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Server().T(); got != wantT {
			t.Errorf("%s: T=%d, want %d", name(i), got, wantT)
		}
	}
	// Churned sessions are gone; capacity accounting drained back to the
	// survivors.
	if got, want := api.Registry().Len(), sessions; got != want {
		t.Errorf("registry holds %d sessions, want %d", got, want)
	}
	if got, want := api.Registry().Users(), sessions*10; got != want {
		t.Errorf("registry accounts %d users, want %d", got, want)
	}
}
