package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/markov"
)

// doJSON runs one request against a fresh recorder and decodes the JSON
// response body into out (which may be nil).
func doJSON(t *testing.T, h http.Handler, method, target, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding response %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec
}

// fig7ModelJSON renders the Fig. 7 adversary model as config JSON.
func fig7ModelJSON(t *testing.T) string {
	t.Helper()
	m := ModelConfig{Backward: markov.Fig7Backward(), Forward: markov.Fig7Forward()}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestHandlerValidation(t *testing.T) {
	model := fig7ModelJSON(t)
	valid := `{"name":"s1","domain":2,"users":3,"models":[` + model + `,` + model + `,{}]}`
	tests := []struct {
		name    string
		method  string
		target  string
		body    string
		status  int
		errPart string // substring the error body must contain; "" = no error expected
	}{
		{"health", "GET", "/healthz", "", http.StatusOK, ""},
		{"create ok", "POST", "/v1/sessions", valid, http.StatusCreated, ""},
		{"create duplicate", "POST", "/v1/sessions", valid, http.StatusConflict, "already exists"},
		{"create bad json", "POST", "/v1/sessions", `{"name":`, http.StatusBadRequest, "decoding"},
		{"create unknown field", "POST", "/v1/sessions", `{"name":"x","domain":2,"users":1,"bogus":1}`, http.StatusBadRequest, "bogus"},
		{"create no population", "POST", "/v1/sessions", `{"name":"x","domain":2}`, http.StatusBadRequest, "population"},
		{"create models and cohorts", "POST", "/v1/sessions",
			`{"name":"x","domain":2,"models":[{}],"cohorts":[{"users":1,"model":{}}]}`,
			http.StatusBadRequest, "not both"},
		{"create bad name", "POST", "/v1/sessions", `{"name":"a/b","domain":2,"users":1}`, http.StatusBadRequest, "slash"},
		{"create empty name", "POST", "/v1/sessions", `{"domain":2,"users":1}`, http.StatusBadRequest, "empty"},
		{"create bad noise", "POST", "/v1/sessions", `{"name":"x","domain":2,"users":1,"noise":"gauss"}`, http.StatusBadRequest, "noise"},
		{"create geometric fractional sensitivity", "POST", "/v1/sessions",
			`{"name":"x","domain":2,"users":1,"noise":"geometric","sensitivity":1.5}`,
			http.StatusBadRequest, "integral"},
		{"create bad plan kind", "POST", "/v1/sessions",
			`{"name":"x","domain":2,"users":1,"plan":{"kind":"magic","alpha":1}}`,
			http.StatusBadRequest, "plan kind"},
		{"create quantified without horizon", "POST", "/v1/sessions",
			`{"name":"x","domain":2,"users":1,"plan":{"kind":"quantified","alpha":1}}`,
			http.StatusBadRequest, "horizon"},
		{"create absurd users hits aggregate capacity", "POST", "/v1/sessions",
			`{"name":"x","domain":2,"users":2000000000}`,
			http.StatusServiceUnavailable, "capacity"},
		{"create too many users", "POST", "/v1/sessions",
			`{"name":"x","domain":2,"users":20000000}`,
			http.StatusBadRequest, "limit"},
		{"create too many cohort users", "POST", "/v1/sessions",
			`{"name":"x","domain":2,"cohorts":[{"users":2000000000,"model":{}}]}`,
			http.StatusBadRequest, "limit"},
		{"create huge domain", "POST", "/v1/sessions",
			`{"name":"x","domain":2000000000,"users":1}`,
			http.StatusBadRequest, "limit"},
		{"create domain mismatch", "POST", "/v1/sessions",
			`{"name":"x","domain":3,"models":[` + model + `]}`,
			http.StatusBadRequest, "domain"},
		{"get ok", "GET", "/v1/sessions/s1", "", http.StatusOK, ""},
		{"get missing", "GET", "/v1/sessions/nope", "", http.StatusNotFound, "not found"},
		{"list", "GET", "/v1/sessions", "", http.StatusOK, ""},
		{"step ok", "POST", "/v1/sessions/s1/steps", `{"values":[0,1,1],"eps":0.5}`, http.StatusOK, ""},
		{"step missing session", "POST", "/v1/sessions/nope/steps", `{"values":[0,1,1],"eps":0.5}`, http.StatusNotFound, "not found"},
		{"step wrong population", "POST", "/v1/sessions/s1/steps", `{"values":[0],"eps":0.5}`, http.StatusBadRequest, "values"},
		{"step bad eps", "POST", "/v1/sessions/s1/steps", `{"values":[0,1,1],"eps":-1}`, http.StatusBadRequest, "positive"},
		{"step without plan", "POST", "/v1/sessions/s1/steps", `{"values":[0,1,1]}`, http.StatusConflict, "no release plan"},
		{"published", "GET", "/v1/sessions/s1/published", "", http.StatusOK, ""},
		{"published one", "GET", "/v1/sessions/s1/published?t=1", "", http.StatusOK, ""},
		{"published out of range", "GET", "/v1/sessions/s1/published?t=9", "", http.StatusBadRequest, "out of range"},
		{"tpl missing user", "GET", "/v1/sessions/s1/tpl", "", http.StatusBadRequest, "user"},
		{"tpl bad user", "GET", "/v1/sessions/s1/tpl?user=99", "", http.StatusBadRequest, "out of range"},
		{"tpl ok", "GET", "/v1/sessions/s1/tpl?user=0", "", http.StatusOK, ""},
		{"tpl bad format", "GET", "/v1/sessions/s1/tpl?user=0&format=xml", "", http.StatusBadRequest, "format"},
		{"wevent missing w", "GET", "/v1/sessions/s1/wevent", "", http.StatusBadRequest, "missing query parameter"},
		{"wevent ok", "GET", "/v1/sessions/s1/wevent?w=1&user=0", "", http.StatusOK, ""},
		{"wevent population", "GET", "/v1/sessions/s1/wevent?w=1", "", http.StatusOK, ""},
		{"report ok", "GET", "/v1/sessions/s1/report", "", http.StatusOK, ""},
		{"delete missing", "DELETE", "/v1/sessions/nope", "", http.StatusNotFound, "not found"},
		{"delete ok", "DELETE", "/v1/sessions/s1", "", http.StatusNoContent, ""},
		{"get after delete", "GET", "/v1/sessions/s1", "", http.StatusNotFound, "not found"},
		{"method not allowed", "PUT", "/v1/sessions/s1", "", http.StatusMethodNotAllowed, ""},
		{"unknown route", "GET", "/v1/nope", "", http.StatusNotFound, ""},
	}

	h := NewAPI().Handler()
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSON(t, h, tc.method, tc.target, tc.body, nil)
			if rec.Code != tc.status {
				t.Fatalf("%s %s: status %d, want %d (body %s)", tc.method, tc.target, rec.Code, tc.status, rec.Body.String())
			}
			if tc.errPart != "" && !strings.Contains(rec.Body.String(), tc.errPart) {
				t.Fatalf("%s %s: body %q does not mention %q", tc.method, tc.target, rec.Body.String(), tc.errPart)
			}
		})
	}
}

// TestAggregateCapacity checks that the registry bounds the total
// declared population across sessions, and releases capacity on
// delete.
func TestAggregateCapacity(t *testing.T) {
	reg := NewRegistry()
	reg.capacity = 6 // keep the test allocation-cheap
	for i := 0; i < 3; i++ {
		cfg := &SessionConfig{Name: fmt.Sprintf("s%d", i), Domain: 2, Users: 2}
		if _, err := reg.Create(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Create(&SessionConfig{Name: "overflow", Domain: 2, Users: 1}); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-capacity create: err = %v, want ErrCapacity", err)
	}
	if err := reg.Delete("s0"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(&SessionConfig{Name: "refill", Domain: 2, Users: 1}); err != nil {
		t.Fatalf("create after delete should succeed: %v", err)
	}
	if got := reg.Users(); got != 5 {
		t.Fatalf("Users() = %d, want 5", got)
	}
}

func TestSessionLifecycle(t *testing.T) {
	h := NewAPI().Handler()
	model := fig7ModelJSON(t)

	var created Summary
	rec := doJSON(t, h, "POST", "/v1/sessions",
		`{"name":"lc","domain":2,"cohorts":[{"users":5,"model":`+model+`},{"users":3,"model":{}}],"plan":{"kind":"upper-bound","alpha":2,"model":`+model+`}}`,
		&created)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	if created.Users != 8 || created.Cohorts != 2 || created.Domain != 2 || !created.HasPlan {
		t.Fatalf("summary %+v: want 8 users, 2 cohorts, domain 2, plan", created)
	}

	// A planned step draws its budget from the plan.
	var step stepResponse
	rec = doJSON(t, h, "POST", "/v1/sessions/lc/steps", `{"values":[0,1,0,1,0,1,0,1]}`, &step)
	if rec.Code != http.StatusOK {
		t.Fatalf("planned step: %d %s", rec.Code, rec.Body.String())
	}
	if !step.Planned || step.T != 1 || step.Eps <= 0 || len(step.Published) != 2 {
		t.Fatalf("planned step response %+v", step)
	}

	// An explicit step reports the requested budget.
	rec = doJSON(t, h, "POST", "/v1/sessions/lc/steps", `{"values":[0,0,0,0,1,1,1,1],"eps":0.25}`, &step)
	if rec.Code != http.StatusOK {
		t.Fatalf("explicit step: %d %s", rec.Code, rec.Body.String())
	}
	if step.Planned || step.T != 2 || step.Eps != 0.25 {
		t.Fatalf("explicit step response %+v", step)
	}

	var listed struct {
		Sessions []Summary `json:"sessions"`
	}
	doJSON(t, h, "GET", "/v1/sessions", "", &listed)
	if len(listed.Sessions) != 1 || listed.Sessions[0].T != 2 {
		t.Fatalf("list %+v: want one session at t=2", listed.Sessions)
	}

	var hist struct {
		T         int         `json:"t"`
		Budgets   []float64   `json:"budgets"`
		Published [][]float64 `json:"published"`
	}
	doJSON(t, h, "GET", "/v1/sessions/lc/published", "", &hist)
	if hist.T != 2 || len(hist.Budgets) != 2 || len(hist.Published) != 2 {
		t.Fatalf("history %+v", hist)
	}
	if hist.Budgets[1] != 0.25 {
		t.Fatalf("budget[1] = %v, want 0.25", hist.Budgets[1])
	}
}
