package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/enginecache"
	"repro/internal/persist"
	"repro/internal/report"
	"repro/internal/stream"
	"repro/internal/version"
)

// maxBodyBytes caps a request body. It must admit a full step of the
// largest legal session: 10M users of up-to-7-digit values is ~80 MB
// of JSON, so 256 MiB leaves headroom while still bounding a hostile
// payload.
const maxBodyBytes = 256 << 20

// ndjsonContentType is the media type of NDJSON request and response
// bodies (streamed report tables, batched step ingestion).
const ndjsonContentType = "application/x-ndjson"

// API is the HTTP face of a session registry. It serves two wire
// versions over one endpoint layer (the Registry/Session methods):
//
//   - /v2: the current contract — batched step ingestion, idempotency
//     keys, cursor pagination, problem+json errors, SSE watch (v2.go).
//   - /v1: the original one-call-per-step contract, kept as thin shims
//     for existing callers. Deprecated: v1 responses carry a
//     "Deprecation: true" header; new clients use tpl/client against v2.
type API struct {
	reg     *Registry
	started time.Time

	// watchStop, when closed, ends every open SSE watch stream (nil is
	// legal and means "never"). StopWatchers closes it; the serving
	// layer registers that on graceful shutdown so long-lived watch
	// connections cannot stall http.Server.Shutdown.
	watchStop     chan struct{}
	watchStopOnce sync.Once

	// pluginHealth, when set, contributes the healthz "plugins" block.
	// The seam is a plain closure so the service layer never imports the
	// plugin packages; the plugin manager installs its StatusAll here.
	pluginMu     sync.RWMutex
	pluginHealth func() any
}

// NewAPI creates an API over a fresh registry.
func NewAPI() *API {
	api := &API{reg: NewRegistry(), watchStop: make(chan struct{})}
	api.started = api.reg.now()
	return api
}

// StopWatchers ends every open watch stream. Idempotent; new watch
// requests after it return immediately.
func (a *API) StopWatchers() {
	a.watchStopOnce.Do(func() {
		if a.watchStop != nil {
			close(a.watchStop)
		}
	})
}

// Registry exposes the session store (for embedding callers and tests).
func (a *API) Registry() *Registry { return a.reg }

// Handler builds the route table.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", a.health)

	// v1 — deprecated shims (see package doc and DESIGN.md §7).
	mux.HandleFunc("GET /v1/sessions", deprecated(a.listSessions))
	mux.HandleFunc("POST /v1/sessions", deprecated(a.createSession))
	mux.HandleFunc("GET /v1/sessions/{name}", deprecated(a.getSession))
	mux.HandleFunc("DELETE /v1/sessions/{name}", deprecated(a.deleteSession))
	mux.HandleFunc("POST /v1/sessions/{name}/steps", deprecated(a.postStep))
	mux.HandleFunc("POST /v1/sessions/{name}/snapshot", deprecated(a.postSnapshot))
	mux.HandleFunc("GET /v1/sessions/{name}/published", deprecated(a.getPublishedV1))
	mux.HandleFunc("GET /v1/sessions/{name}/tpl", deprecated(a.getTPLV1))
	mux.HandleFunc("GET /v1/sessions/{name}/wevent", deprecated(a.getWEvent))
	mux.HandleFunc("GET /v1/sessions/{name}/report", deprecated(a.getReport))

	// v2 — the current contract (v2.go).
	mux.HandleFunc("GET /v2/sessions", a.listSessions)
	mux.HandleFunc("POST /v2/sessions", a.createSession)
	mux.HandleFunc("GET /v2/sessions/{name}", a.getSession)
	mux.HandleFunc("DELETE /v2/sessions/{name}", a.deleteSession)
	mux.HandleFunc("POST /v2/sessions/{name}/steps", a.postStepsV2)
	mux.HandleFunc("POST /v2/sessions/{name}/snapshot", a.postSnapshot)
	mux.HandleFunc("GET /v2/sessions/{name}/published", a.getPublishedV2)
	mux.HandleFunc("GET /v2/sessions/{name}/tpl", a.getTPLV2)
	mux.HandleFunc("GET /v2/sessions/{name}/wevent", a.getWEvent)
	mux.HandleFunc("GET /v2/sessions/{name}/report", a.getReport)
	mux.HandleFunc("GET /v2/sessions/{name}/watch", a.watchSession)

	// Cluster plane (migrate.go): source-driven session hand-off. The
	// literal "import" segment wins over {name} patterns by ServeMux
	// precedence, so "import" is not a reachable session name here.
	mux.HandleFunc("POST /v2/sessions/{name}/migrate", a.postMigrate)
	mux.HandleFunc("POST /v2/sessions/import", a.importSession)
	return mux
}

// migrateRequest is the POST /v2/sessions/{name}/migrate body.
type migrateRequest struct {
	// Target is the receiving shard's base URL.
	Target string `json:"target"`
}

// postMigrate hands one session off to another shard: snapshot here,
// restore there, tombstone + 421 redirects here afterwards.
func (a *API) postMigrate(w http.ResponseWriter, r *http.Request) {
	var req migrateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")
	location, err := a.reg.Migrate(r.Context(), name, req.Target)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "location": location})
}

// importSession receives a migrating session's state (the snapshot
// envelope, pushed by the source's Migrate) and registers it here.
func (a *API) importSession(w http.ResponseWriter, r *http.Request) {
	version, body, err := persist.DecodeEnvelope(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, fmt.Errorf("service: decoding import envelope: %w", err))
		return
	}
	s, err := a.reg.ImportSession(version, body)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.Summary())
}

// deprecated marks a v1 handler's responses (RFC 9745 header plus the
// successor pointer) without changing its behavior.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v2>; rel="successor-version"`)
		h(w, r)
	}
}

// writeBody emits a response body as JSON after headers are settled.
// The Content-Type must already be set (writeJSON and writeProblem do).
func writeBody(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeBody(w, status, v)
}

// session resolves the {name} path value, writing the 404 itself.
func (a *API) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	s, err := a.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	return s, true
}

// reportFormats are the ?format= values the report-shaped endpoints
// (tpl, wevent, report) offer, in both API versions.
var reportFormats = []string{"json", "jsonl"}

// wantJSONLines reports whether the request asked for the report
// JSON-lines wire format. An unknown format is rejected with an
// unsupported_format problem listing the supported values — shared by
// v1 and v2.
func wantJSONLines(w http.ResponseWriter, r *http.Request) (jsonl, ok bool) {
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		return false, true
	case "jsonl":
		return true, true
	default:
		p := newProblem(http.StatusBadRequest, CodeUnsupportedFormat,
			fmt.Sprintf("service: unknown format %q (want json or jsonl)", f))
		p.Supported = reportFormats
		writeProblem(w, p)
		return false, false
	}
}

// renderTable streams one report table as JSON lines.
func renderTable(w http.ResponseWriter, t *report.Table) {
	w.Header().Set("Content-Type", ndjsonContentType)
	_ = t.JSONLines(w)
}

// intQuery parses a required integer query parameter.
func intQuery(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("service: missing query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("service: parameter %q: %w", key, err)
	}
	return v, nil
}

// healthResponse is the GET /healthz body: enough for an operator to
// see at a glance that the process is alive, what build it runs, how
// many tenants it carries, and whether their accounting state is
// durably persisted (and how stale the persistence is).
type healthResponse struct {
	Status        string            `json:"status"`
	Version       string            `json:"version"`
	Sessions      int               `json:"sessions"`
	Users         int               `json:"users"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Persistence   PersistenceHealth `json:"persistence"`
	// EngineCache reports the on-disk compiled-engine cache counters
	// (absent in memory-only mode): warm-start hit rate, cumulative
	// load/write time, evictions, and directory footprint.
	EngineCache *enginecache.Stats `json:"engine_cache,omitempty"`
	// Plugins reports the plugin manager's per-plugin status (absent
	// when no manager is attached — see SetPluginHealth).
	Plugins any `json:"plugins,omitempty"`
}

// SetPluginHealth installs (or, with nil, removes) the provider of the
// healthz "plugins" block. Safe to call while serving.
func (a *API) SetPluginHealth(f func() any) {
	a.pluginMu.Lock()
	a.pluginHealth = f
	a.pluginMu.Unlock()
}

func (a *API) health(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:        "ok",
		Version:       version.String(),
		Sessions:      a.reg.Len(),
		Users:         a.reg.Users(),
		UptimeSeconds: a.reg.now().Sub(a.started).Seconds(),
		Persistence:   a.reg.PersistenceHealth(),
	}
	if ec := a.reg.EngineCache(); ec != nil {
		st := ec.Stats()
		resp.EngineCache = &st
	}
	a.pluginMu.RLock()
	ph := a.pluginHealth
	a.pluginMu.RUnlock()
	if ph != nil {
		resp.Plugins = ph()
	}
	writeJSON(w, http.StatusOK, resp)
}

// postSnapshot forces an immediate durable snapshot of one session and
// reports the resulting persistence metadata. 409 in ephemeral mode.
func (a *API) postSnapshot(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	info, err := s.SnapshotNow()
	if err != nil {
		if errors.Is(err, ErrNoStore) {
			writeError(w, err)
		} else {
			writeErrorStatus(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": s.Name(), "t": s.Server().T(), "persistence": info})
}

func (a *API) listSessions(w http.ResponseWriter, r *http.Request) {
	sessions := a.reg.List()
	out := make([]Summary, len(sessions))
	for i, s := range sessions {
		out[i] = s.Summary()
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (a *API) createSession(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if err := decodeBody(w, r, &cfg); err != nil {
		writeError(w, err)
		return
	}
	s, err := a.reg.Create(&cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.Summary())
}

// decodeBody reads one JSON value, rejecting trailing garbage and
// unknown fields (a typoed config key should fail loudly, not silently
// default).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: decoding request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("service: trailing data after request body")
	}
	return nil
}

func (a *API) getSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.Summary())
}

func (a *API) deleteSession(w http.ResponseWriter, r *http.Request) {
	if err := a.reg.Delete(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// stepRequest is the v1 POST steps body. Eps nil means "use the
// attached release plan".
type stepRequest struct {
	Values []int    `json:"values"`
	Eps    *float64 `json:"eps,omitempty"`
}

// stepResponse reports the step a collection landed on (one element of
// the v2 batch response, and the whole v1 step response).
type stepResponse struct {
	T         int       `json:"t"`
	Eps       float64   `json:"eps"`
	Planned   bool      `json:"planned"`
	Published []float64 `json:"published"`
}

// postStep is the deprecated v1 single-step shim: a one-element batch
// through the same endpoint layer v2 uses (no idempotency key — v1
// never had a retry contract).
func (a *API) postStep(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	var req stepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	results, _, err := s.CollectBatch("", []stream.BatchStep{{Values: req.Values, Eps: req.Eps}})
	if err != nil {
		writeError(w, err)
		return
	}
	res := results[0]
	writeJSON(w, http.StatusOK, stepResponse{T: res.T, Eps: res.Eps, Planned: res.Planned, Published: res.Published})
}

// getPublishedV1 is the deprecated v1 history endpoint: one histogram
// with ?t=, else the entire history in one response (v2 paginates).
func (a *API) getPublishedV1(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	srv := s.Server()
	if raw := r.URL.Query().Get("t"); raw != "" {
		t, err := intQuery(r, "t")
		if err != nil {
			writeError(w, err)
			return
		}
		hist, err := srv.Published(t)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"t": t, "published": hist})
		return
	}
	// Full history: budgets first so len(budgets) <= len(published reads)
	// even if a concurrent step lands between the two calls.
	budgets := srv.Budgets()
	published := make([][]float64, len(budgets))
	for t := 1; t <= len(budgets); t++ {
		hist, err := srv.Published(t)
		if err != nil {
			writeErrorStatus(w, http.StatusInternalServerError, err)
			return
		}
		published[t-1] = hist
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"t":         len(budgets),
		"budgets":   budgets,
		"published": published,
	})
}

// getTPLV1 is the deprecated v1 TPL endpoint: the whole series in one
// response (v2 paginates).
func (a *API) getTPLV1(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	jsonl, ok := wantJSONLines(w, r)
	if !ok {
		return
	}
	user, err := intQuery(r, "user")
	if err != nil {
		writeError(w, err)
		return
	}
	series, err := s.Server().UserTPLSeries(user)
	if err != nil {
		writeError(w, err)
		return
	}
	if !jsonl {
		writeJSON(w, http.StatusOK, map[string]any{"user": user, "tpl": series})
		return
	}
	tb := &report.Table{
		Title:  fmt.Sprintf("TPL series for user %d (session %s)", user, s.Name()),
		Header: []string{"t", "tpl"},
	}
	for t, v := range series {
		tb.AddRow(strconv.Itoa(t+1), fmt.Sprintf("%.6f", v))
	}
	renderTable(w, tb)
}

func (a *API) getWEvent(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	jsonl, ok := wantJSONLines(w, r)
	if !ok {
		return
	}
	wWin, err := intQuery(r, "w")
	if err != nil {
		writeError(w, err)
		return
	}
	srv := s.Server()
	var (
		leak float64
		user int
	)
	if raw := r.URL.Query().Get("user"); raw != "" {
		if user, err = intQuery(r, "user"); err == nil {
			leak, err = srv.WEvent(user, wWin)
		}
	} else {
		leak, user, err = srv.MaxWEvent(wWin)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if !jsonl {
		writeJSON(w, http.StatusOK, map[string]any{"w": wWin, "user": user, "leakage": leak})
		return
	}
	tb := &report.Table{
		Title:  fmt.Sprintf("%d-event leakage (session %s)", wWin, s.Name()),
		Header: []string{"w", "user", "leakage"},
	}
	tb.AddRow(strconv.Itoa(wWin), strconv.Itoa(user), fmt.Sprintf("%.6f", leak))
	renderTable(w, tb)
}

// reportResponse is the wire form of stream.Report: a service-owned
// DTO so the public API keeps its snake_case convention and internal
// field renames cannot silently change the wire format.
type reportResponse struct {
	T                 int     `json:"t"`
	EventLevelAlpha   float64 `json:"event_level_alpha"`
	WorstUser         int     `json:"worst_user"`
	UserLevel         float64 `json:"user_level"`
	NominalEventLevel float64 `json:"nominal_event_level"`
}

func (a *API) getReport(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	jsonl, ok := wantJSONLines(w, r)
	if !ok {
		return
	}
	rep, err := s.Server().Report()
	if err != nil {
		writeErrorStatus(w, http.StatusInternalServerError, err)
		return
	}
	if !jsonl {
		writeJSON(w, http.StatusOK, reportResponse{
			T:                 rep.T,
			EventLevelAlpha:   rep.EventLevelAlpha,
			WorstUser:         rep.WorstUser,
			UserLevel:         rep.UserLevel,
			NominalEventLevel: rep.NominalEventLevel,
		})
		return
	}
	renderTable(w, rep.Table())
}
