// Package chunked provides the session-lifetime history storage of the
// accounting hot path: an append-only log laid out as fixed-size chunks
// so that appending NEVER moves settled elements. The hand-doubled
// slices it replaces (core.Accountant's eps/bpl, stream.Server's
// published/budgets) re-copied the whole history on every capacity
// doubling — ~2N elements of cold memmove over a session's life, which
// profiles as a top-line cost of multi-hour ingest. A chunked log pays
// none of that: an append writes one element into the tail chunk, a
// full tail allocates one fresh chunk, and the only thing that ever
// reallocates is the spine (the slice of chunk pointers — kilobytes
// per million elements, never the element data).
//
// The zero value is an empty, usable log. A Log is not safe for
// concurrent use; its owners (accountants, servers) serialize access
// under their own locks, exactly as they did for the plain slices.
package chunked

import "sync/atomic"

// shift sets the chunk size: 1<<shift elements per chunk. 4096 elements
// is 32 KiB of float64s — big enough that the spine stays tiny (one
// pointer per chunk), small enough that a short-lived session does not
// overallocate meaningfully.
const shift = 12

// Size is the number of elements per chunk.
const Size = 1 << shift

const mask = Size - 1

// elementCopies counts element re-copies performed by log growth since
// process start. Growth never needs one by construction — growCopy is
// the single routing point any future copying growth strategy would
// have to use — so the soak-style regression tests assert this counter
// stays exactly zero across million-step runs.
var elementCopies atomic.Int64

// ElementCopies reports how many settled elements log growth has
// re-copied process-wide. Structurally zero; exposed as the testing
// hook that keeps it that way.
func ElementCopies() int64 { return elementCopies.Load() }

// growCopy is the only sanctioned way for growth to move element data.
// Nothing calls it; it exists so that a future "compact the chunks"
// change cannot dodge the zero-copy regression tests.
func growCopy[T any](dst, src []T) { //nolint:unused
	elementCopies.Add(int64(len(src)))
	copy(dst, src)
}

// Log is an append-only chunked sequence. Indexing is O(1) (a shift, a
// mask and two loads); appends are O(1) with no amortization debt on
// the element data.
type Log[T any] struct {
	spine [][]T
	n     int
}

// Len returns the number of elements appended so far.
func (l *Log[T]) Len() int { return l.n }

// Append adds v at index Len(). Settled elements never move: a full
// tail chunk allocates a fresh one, and only the spine (chunk
// pointers) is ever reallocated by append's growth.
func (l *Log[T]) Append(v T) {
	ci := l.n >> shift
	if ci == len(l.spine) {
		l.spine = append(l.spine, make([]T, Size))
	}
	l.spine[ci][l.n&mask] = v
	l.n++
}

// At returns the element at index i (0-based). It panics when i is out
// of range, matching slice semantics.
func (l *Log[T]) At(i int) T {
	if i < 0 || i >= l.n {
		panic("chunked: index out of range")
	}
	return l.spine[i>>shift][i&mask]
}

// SetAt replaces the element at index i (0-based). The history logs
// never rewrite settled entries; this exists for completeness of the
// slice semantics the log replaces and for tests.
func (l *Log[T]) SetAt(i int, v T) {
	if i < 0 || i >= l.n {
		panic("chunked: index out of range")
	}
	l.spine[i>>shift][i&mask] = v
}

// AppendRange appends the elements with indices [from, to) to dst and
// returns it, copying chunk-by-chunk. It panics on an invalid range,
// matching slice semantics.
func (l *Log[T]) AppendRange(dst []T, from, to int) []T {
	if from < 0 || to > l.n || from > to {
		panic("chunked: range out of bounds")
	}
	if cap(dst)-len(dst) < to-from {
		grown := make([]T, len(dst), len(dst)+(to-from))
		copy(grown, dst)
		dst = grown
	}
	for from < to {
		chunk := l.spine[from>>shift]
		off := from & mask
		end := off + (to - from)
		if end > Size {
			end = Size
		}
		dst = append(dst, chunk[off:end]...)
		from += end - off
	}
	return dst
}

// CopyAll returns a fresh contiguous copy of the whole sequence (nil
// when empty, matching the append-copy idiom of the slices the log
// replaces).
func (l *Log[T]) CopyAll() []T {
	if l.n == 0 {
		return nil
	}
	return l.AppendRange(make([]T, 0, l.n), 0, l.n)
}

// Chunk returns the i-th chunk's elements as a live aliased view
// (read-only by convention; the tail chunk's settled prefix is
// immutable). Tests use it to pin down pointer stability — the
// zero-re-copy property is exactly "chunk 0's backing array never
// moves" — and iteration-heavy readers use it to walk the history
// without a per-element bounds recheck.
func (l *Log[T]) Chunk(i int) []T {
	if i < 0 || i > (l.n-1)>>shift || l.n == 0 {
		panic("chunked: chunk index out of range")
	}
	chunk := l.spine[i]
	if end := l.n - i<<shift; end < Size {
		return chunk[:end]
	}
	return chunk
}

// Chunks returns the number of chunks currently holding elements.
func (l *Log[T]) Chunks() int {
	return (l.n + Size - 1) >> shift
}

// FromSlice builds a log holding a copy of s — the bulk-load path of
// Snapshot/Restore round-trips. (The copy is a load, not growth;
// ElementCopies is about re-copying elements the log already holds.)
func FromSlice[T any](s []T) Log[T] {
	var l Log[T]
	l.spine = make([][]T, 0, (len(s)+Size-1)>>shift)
	for len(s) > 0 {
		chunk := make([]T, Size)
		n := copy(chunk, s)
		l.spine = append(l.spine, chunk)
		l.n += n
		s = s[n:]
	}
	return l
}
