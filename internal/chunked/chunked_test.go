package chunked

import (
	"math/rand"
	"testing"
)

func TestAppendAtRoundTrip(t *testing.T) {
	var l Log[float64]
	const n = 3*Size + 17
	ref := make([]float64, 0, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		v := rng.Float64()
		l.Append(v)
		ref = append(ref, v)
		if l.Len() != i+1 {
			t.Fatalf("len %d after %d appends", l.Len(), i+1)
		}
	}
	for i, want := range ref {
		if got := l.At(i); got != want {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
	}
	all := l.CopyAll()
	if len(all) != n {
		t.Fatalf("CopyAll len %d, want %d", len(all), n)
	}
	for i := range all {
		if all[i] != ref[i] {
			t.Fatalf("CopyAll[%d] = %v, want %v", i, all[i], ref[i])
		}
	}
}

func TestAppendRangeCrossesChunks(t *testing.T) {
	var l Log[int]
	const n = 2*Size + 100
	for i := 0; i < n; i++ {
		l.Append(i)
	}
	for _, r := range [][2]int{{0, 0}, {0, n}, {Size - 1, Size + 1}, {Size, 2 * Size}, {2*Size - 3, 2*Size + 3}, {n - 1, n}} {
		got := l.AppendRange(nil, r[0], r[1])
		if len(got) != r[1]-r[0] {
			t.Fatalf("range [%d,%d): len %d", r[0], r[1], len(got))
		}
		for i, v := range got {
			if v != r[0]+i {
				t.Fatalf("range [%d,%d): element %d = %d", r[0], r[1], i, v)
			}
		}
	}
	// Appending into a prefilled dst preserves the prefix.
	dst := []int{-1, -2}
	dst = l.AppendRange(dst, 5, 9)
	want := []int{-1, -2, 5, 6, 7, 8}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("prefilled dst = %v, want %v", dst, want)
		}
	}
}

func TestFromSliceRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, Size - 1, Size, Size + 1, 2*Size + 5} {
		src := make([]float64, n)
		for i := range src {
			src[i] = float64(i) * 1.5
		}
		l := FromSlice(src)
		if l.Len() != n {
			t.Fatalf("n=%d: len %d", n, l.Len())
		}
		for i := range src {
			if l.At(i) != src[i] {
				t.Fatalf("n=%d: At(%d) = %v", n, i, l.At(i))
			}
		}
		// The log owns its copy: mutating the source must not show.
		if n > 0 {
			src[0] = -1
			if l.At(0) == -1 {
				t.Fatal("FromSlice aliases its input")
			}
		}
	}
}

func TestChunkPointerStability(t *testing.T) {
	var l Log[float64]
	l.Append(42)
	first := l.Chunk(0)
	for i := 1; i < 5*Size; i++ {
		l.Append(float64(i))
	}
	if &first[0] != &l.Chunk(0)[0] {
		t.Fatal("chunk 0 backing array moved during growth")
	}
	if first[0] != 42 {
		t.Fatalf("chunk 0 element clobbered: %v", first[0])
	}
	if got := l.Chunks(); got != 5 {
		t.Fatalf("Chunks() = %d, want 5", got)
	}
	if last := l.Chunk(4); len(last) != Size {
		t.Fatalf("full tail chunk has len %d", len(last))
	}
	l.Append(1)
	if last := l.Chunk(5); len(last) != 1 {
		t.Fatalf("fresh tail chunk has len %d", len(last))
	}
}

func TestElementCopiesStaysZero(t *testing.T) {
	before := ElementCopies()
	var l Log[int]
	for i := 0; i < 3*Size; i++ {
		l.Append(i)
	}
	if d := ElementCopies() - before; d != 0 {
		t.Fatalf("growth re-copied %d elements", d)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	var l Log[int]
	l.Append(1)
	for _, fn := range []func(){
		func() { l.At(-1) },
		func() { l.At(1) },
		func() { l.AppendRange(nil, 0, 2) },
		func() { l.AppendRange(nil, -1, 0) },
		func() { l.Chunk(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
