// Package perfgate compares two machine-readable benchmark documents —
// the committed BENCH_*.json trajectory and a fresh run of the same
// benchmark — and reports performance regressions beyond a tolerance.
// It is the library behind `tplbench -gate` and the perf-regression CI
// job: the committed file is the floor the build must not sink under,
// so a change that silently costs >15% of ingest throughput (or
// engine-eval latency, or journal-append latency) fails instead of
// drifting into the trajectory unnoticed.
//
// The comparison is structural, not schema-bound: a document is
// `{"benchmark": "...", "points": [{...}, ...]}` where each point mixes
// identity fields (which row is this), configuration fields, and
// metrics. Rows are matched across the two documents by their identity
// key; within a matched pair, every recognized metric field is compared
// directionally:
//
//   - fields containing "per_sec" or "speedup" are higher-better,
//   - fields ending in "_ns", containing "ns_per", or starting with
//     "allocs_per" are lower-better,
//   - everything else (counts, sizes, labels) is identity/configuration
//     and never gated.
//
// Rows present only in the new document are fine (new benchmarks land
// before their trajectory does); rows that disappear are an error — a
// deleted benchmark must be deleted from the committed file too, not
// silently skipped.
package perfgate

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// DefaultTolerance is the relative slack a metric may lose before the
// gate fails: 0.15 means a >15% regression fails the build.
const DefaultTolerance = 0.15

// allocsFloor is the absolute slack for allocs_per_* metrics: pooled
// hot paths sit near zero allocations per step, where a relative
// tolerance alone would turn background-GC dust (0.10 -> 0.13) into a
// failure. A real pooling regression re-introduces whole allocations
// per step and clears this floor immediately.
const allocsFloor = 0.25

// identityKeys maps a document's "benchmark" label to the point fields
// that identify a row. Unknown benchmarks fall back to every
// string-valued field, which is the right default for label-keyed
// documents.
var identityKeys = map[string][]string{
	"api":     {"mode"},
	"engine":  {"n", "chain"},
	"persist": {"users", "cohorts", "steps"},
}

// Regression is one gated metric that got worse beyond tolerance.
type Regression struct {
	Point  string  // identity of the row, e.g. mode=v2-ndjson-counts
	Metric string  // field name, e.g. steps_per_sec
	Old    float64 // committed trajectory value
	New    float64 // fresh run value
	Change float64 // signed relative change, (new-old)/old
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.6g -> %.6g (%+.1f%%)", r.Point, r.Metric, r.Old, r.New, 100*r.Change)
}

// Report is the outcome of one document comparison.
type Report struct {
	Benchmark   string       // the documents' "benchmark" label
	Points      int          // rows matched and compared
	Metrics     int          // metric pairs compared across those rows
	NewPoints   []string     // rows only in the new document (allowed)
	Regressions []Regression // metrics worse than tolerance
}

// OK reports whether the gate passes.
func (r *Report) OK() bool { return len(r.Regressions) == 0 }

type document struct {
	Benchmark string                       `json:"benchmark"`
	Points    []map[string]json.RawMessage `json:"points"`
}

// Compare gates newDoc against oldDoc (both BENCH_*.json bytes) at the
// given tolerance (<=0 means DefaultTolerance). It returns an error for
// malformed documents, mismatched benchmark labels, duplicate row
// identities, or rows that disappeared from the new document;
// regressions are reported in the Report, not as errors, so callers
// decide how to fail.
func Compare(oldDoc, newDoc []byte, tolerance float64) (*Report, error) {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	var oldD, newD document
	if err := json.Unmarshal(oldDoc, &oldD); err != nil {
		return nil, fmt.Errorf("perfgate: old document: %w", err)
	}
	if err := json.Unmarshal(newDoc, &newD); err != nil {
		return nil, fmt.Errorf("perfgate: new document: %w", err)
	}
	if oldD.Benchmark != newD.Benchmark {
		return nil, fmt.Errorf("perfgate: comparing %q against %q", oldD.Benchmark, newD.Benchmark)
	}
	oldRows, err := index(oldD)
	if err != nil {
		return nil, err
	}
	newRows, err := index(newD)
	if err != nil {
		return nil, err
	}

	rep := &Report{Benchmark: oldD.Benchmark}
	var missing []string
	for _, key := range sortedKeys(oldRows) {
		newPoint, ok := newRows[key]
		if !ok {
			missing = append(missing, key)
			continue
		}
		rep.Points++
		for _, metric := range sortedKeys(oldRows[key]) {
			higherBetter, gated := classify(metric)
			if !gated {
				continue
			}
			oldV, okOld := asFloat(oldRows[key][metric])
			newV, okNew := asFloat(newPoint[metric])
			if !okOld || !okNew {
				continue
			}
			rep.Metrics++
			if reg, bad := judge(metric, oldV, newV, higherBetter, tolerance); bad {
				reg.Point = key
				rep.Regressions = append(rep.Regressions, reg)
			}
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("perfgate: rows in the trajectory but not the fresh run: %s", strings.Join(missing, "; "))
	}
	for _, key := range sortedKeys(newRows) {
		if _, ok := oldRows[key]; !ok {
			rep.NewPoints = append(rep.NewPoints, key)
		}
	}
	return rep, nil
}

// judge decides whether one metric pair regressed beyond tolerance.
func judge(metric string, oldV, newV float64, higherBetter bool, tolerance float64) (Regression, bool) {
	if oldV == 0 {
		return Regression{}, false // no baseline to be relative to
	}
	change := (newV - oldV) / oldV
	bad := false
	if higherBetter {
		bad = newV < oldV*(1-tolerance)
	} else {
		bad = newV > oldV*(1+tolerance)
		if strings.HasPrefix(metric, "allocs_per") && newV-oldV < allocsFloor {
			bad = false
		}
	}
	if !bad {
		return Regression{}, false
	}
	return Regression{Metric: metric, Old: oldV, New: newV, Change: change}, true
}

// classify reports a field's gating direction and whether it is a
// metric at all.
func classify(name string) (higherBetter, gated bool) {
	switch {
	case strings.Contains(name, "per_sec"), strings.Contains(name, "speedup"):
		return true, true
	case strings.HasSuffix(name, "_ns"), strings.Contains(name, "ns_per"), strings.HasPrefix(name, "allocs_per"):
		return false, true
	}
	return false, false
}

// index keys a document's points by their identity.
func index(d document) (map[string]map[string]json.RawMessage, error) {
	rows := make(map[string]map[string]json.RawMessage, len(d.Points))
	for i, p := range d.Points {
		key, err := identity(d.Benchmark, p)
		if err != nil {
			return nil, fmt.Errorf("perfgate: %s point %d: %w", d.Benchmark, i, err)
		}
		if _, dup := rows[key]; dup {
			return nil, fmt.Errorf("perfgate: %s has two rows with identity %s", d.Benchmark, key)
		}
		rows[key] = p
	}
	return rows, nil
}

// identity renders a point's identity key.
func identity(benchmark string, p map[string]json.RawMessage) (string, error) {
	keys, ok := identityKeys[benchmark]
	if !ok {
		for name, raw := range p {
			var s string
			if json.Unmarshal(raw, &s) == nil {
				keys = append(keys, name)
			}
		}
		sort.Strings(keys)
	}
	if len(keys) == 0 {
		return "", fmt.Errorf("no identity fields (benchmark %q unknown and the point has no string fields)", benchmark)
	}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		raw, ok := p[k]
		if !ok {
			return "", fmt.Errorf("missing identity field %q", k)
		}
		parts = append(parts, k+"="+strings.Trim(string(raw), `"`))
	}
	return strings.Join(parts, ","), nil
}

func asFloat(raw json.RawMessage) (float64, bool) {
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, false
	}
	return v, true
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
