package perfgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// apiDoc builds an api-benchmark document with one counts row at the
// given throughput/latency/allocs.
func apiDoc(t *testing.T, stepsPerSec, nsPerStep, allocs float64) []byte {
	t.Helper()
	doc := map[string]any{
		"benchmark": "api",
		"points": []map[string]any{{
			"mode":            "v2-ndjson-counts",
			"steps":           100000,
			"requests":        1000,
			"bytes_per_step":  45,
			"ns_per_step":     nsPerStep,
			"steps_per_sec":   stepsPerSec,
			"allocs_per_step": allocs,
		}},
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestGateFailsOnInjectedSlowdown is the acceptance check for the perf
// gate: a 20% throughput loss on the committed trajectory must fail.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	old := apiDoc(t, 500_000, 2000, 1.1)
	slow := apiDoc(t, 400_000, 2500, 1.1) // 20% fewer steps/s, 25% more ns/step
	rep, err := Compare(old, slow, DefaultTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("gate passed a 20% throughput regression")
	}
	metrics := map[string]bool{}
	for _, r := range rep.Regressions {
		metrics[r.Metric] = true
		if r.Point != "mode=v2-ndjson-counts" {
			t.Errorf("regression attributed to %q", r.Point)
		}
	}
	if !metrics["steps_per_sec"] || !metrics["ns_per_step"] {
		t.Fatalf("expected steps_per_sec and ns_per_step regressions, got %v", rep.Regressions)
	}
}

// TestGateWithinTolerance: a 10% wobble in either direction passes at
// the default 15% tolerance, and improvements always pass.
func TestGateWithinTolerance(t *testing.T) {
	old := apiDoc(t, 500_000, 2000, 1.1)
	for name, fresh := range map[string][]byte{
		"wobble-down": apiDoc(t, 450_000, 2200, 1.2),
		"improvement": apiDoc(t, 900_000, 1100, 0.4),
	} {
		rep, err := Compare(old, fresh, DefaultTolerance)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("%s failed the gate: %v", name, rep.Regressions)
		}
		if rep.Points != 1 || rep.Metrics != 3 {
			t.Errorf("%s compared %d points / %d metrics, want 1/3", name, rep.Points, rep.Metrics)
		}
	}
}

// TestGateAllocsFloor: near-zero allocs/step rows get absolute slack
// (GC dust is not a pooling regression), but re-introduced per-step
// allocations fail.
func TestGateAllocsFloor(t *testing.T) {
	old := apiDoc(t, 500_000, 2000, 0.10)
	rep, err := Compare(old, apiDoc(t, 500_000, 2000, 0.20), DefaultTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("doubled-from-dust allocs failed the gate: %v", rep.Regressions)
	}
	rep, err = Compare(old, apiDoc(t, 500_000, 2000, 1.5), DefaultTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("re-introduced per-step allocation passed the gate")
	}
}

// TestGateNewAndMissingRows: rows only in the fresh run are allowed and
// listed; rows that disappeared are an error.
func TestGateNewAndMissingRows(t *testing.T) {
	oldDoc := []byte(`{"benchmark":"api","points":[
		{"mode":"a","steps_per_sec":100}]}`)
	newDoc := []byte(`{"benchmark":"api","points":[
		{"mode":"a","steps_per_sec":100},
		{"mode":"b","steps_per_sec":5}]}`)
	rep, err := Compare(oldDoc, newDoc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.NewPoints) != 1 || rep.NewPoints[0] != "mode=b" {
		t.Fatalf("new-row handling wrong: %+v", rep)
	}
	if _, err := Compare(newDoc, oldDoc, 0); err == nil || !strings.Contains(err.Error(), "mode=b") {
		t.Fatalf("missing row not reported, err=%v", err)
	}
}

// TestGateIdentityMismatches: mismatched benchmark labels and duplicate
// identities are errors, not silent passes.
func TestGateIdentityMismatches(t *testing.T) {
	api := []byte(`{"benchmark":"api","points":[{"mode":"a","steps_per_sec":1}]}`)
	eng := []byte(`{"benchmark":"engine","points":[{"n":4,"chain":"x","eval_ns":9}]}`)
	if _, err := Compare(api, eng, 0); err == nil {
		t.Fatal("cross-benchmark comparison accepted")
	}
	dup := []byte(`{"benchmark":"api","points":[
		{"mode":"a","steps_per_sec":1},{"mode":"a","steps_per_sec":2}]}`)
	if _, err := Compare(dup, dup, 0); err == nil {
		t.Fatal("duplicate identity accepted")
	}
}

// TestGateEngineAndPersistIdentities: the composite identity keys of
// the other two trajectory documents match rows correctly, and config
// fields (sizes, counts) are never gated.
func TestGateEngineAndPersistIdentities(t *testing.T) {
	oldEng := []byte(`{"benchmark":"engine","points":[
		{"n":16,"chain":"dense","compile_ns":1000,"eval_ns":100,"speedup_per_eval":50,"pairs":240},
		{"n":128,"chain":"dense","compile_ns":2000,"eval_ns":110,"speedup_per_eval":60,"pairs":16256}]}`)
	newEng := []byte(`{"benchmark":"engine","points":[
		{"n":128,"chain":"dense","compile_ns":2100,"eval_ns":115,"speedup_per_eval":58,"pairs":99999},
		{"n":16,"chain":"dense","compile_ns":900,"eval_ns":101,"speedup_per_eval":51,"pairs":240}]}`)
	rep, err := Compare(oldEng, newEng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Points != 2 {
		t.Fatalf("engine comparison: %+v", rep)
	}

	oldPer := []byte(`{"benchmark":"persist","points":[
		{"users":1000,"cohorts":9,"steps":32,"journal_append_ns":1000,"replay_per_sec":20000,"journal_record_len":148}]}`)
	newPer := []byte(`{"benchmark":"persist","points":[
		{"users":1000,"cohorts":9,"steps":32,"journal_append_ns":1400,"replay_per_sec":21000,"journal_record_len":300}]}`)
	rep, err = Compare(oldPer, newPer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("40% journal_append_ns regression passed")
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "journal_append_ns" {
		t.Fatalf("expected only journal_append_ns to fail (record_len is config), got %v", rep.Regressions)
	}
}

// TestGateCommittedTrajectories: every committed BENCH_*.json gates
// cleanly against itself — the repo's own trajectory files stay
// parseable by the gate that CI runs on them.
func TestGateCommittedTrajectories(t *testing.T) {
	root := "../.."
	for _, name := range []string{"BENCH_api.json", "BENCH_engine.json", "BENCH_persist.json"} {
		blob, err := os.ReadFile(filepath.Join(root, name))
		if err != nil {
			t.Fatalf("%s: %v (trajectory files must stay in the repo root)", name, err)
		}
		rep, err := Compare(blob, blob, DefaultTolerance)
		if err != nil {
			t.Fatalf("%s does not self-compare: %v", name, err)
		}
		if !rep.OK() || rep.Points == 0 || rep.Metrics == 0 {
			t.Fatalf("%s self-comparison degenerate: %+v", name, rep)
		}
	}
}
