package persist

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Group commit. A journal append is durable only after an fsync, and
// an fsync costs the same whether it covers one record or fifty — so
// paying one per append caps ingest at the disk's sync rate. The
// GroupCommitter coalesces appends across all sessions of a process
// into groups: a leader goroutine collects requests for a bounded
// latency window, writes them in arrival order, issues ONE fsync per
// distinct journal touched by the group, and only then acknowledges.
//
// The durability contract is exactly per-append fsync's, batched:
//
//   - No acknowledgement before the record's bytes are fsync'd. A
//     record lost to a crash was never acked, so an idempotent retry
//     re-applies it — exactly-once holds end to end.
//   - Per-journal append order equals request order. Callers hold
//     their session's step lock across Append, so each journal has at
//     most one outstanding request and the single leader preserves
//     channel FIFO order on disk.
//   - A failed write poisons its journal for the remainder of the
//     group: appending after a partial record would bury readable
//     records behind an unverifiable tail (replay stops at the first
//     torn record). Earlier successful writes in the same group are
//     still fsync'd and acked.

// DefaultGroupWindow is the bounded latency a request may wait for
// companions before its group commits.
const DefaultGroupWindow = 2 * time.Millisecond

// maxGroupBatch bounds one group (memory and worst-case replay loss).
const maxGroupBatch = 1024

// ErrCommitterClosed is returned for appends after Close.
var ErrCommitterClosed = errors.New("persist: group committer closed")

// commitReq is one append waiting to join a group.
type commitReq struct {
	j       *Journal
	version uint32
	body    []byte
	err     error
	done    chan error
}

// GroupCommitter coalesces journal appends into shared fsyncs.
type GroupCommitter struct {
	window time.Duration
	reqs   chan *commitReq
	stop   chan struct{}
	wg     sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// NewGroupCommitter starts a committer whose groups wait at most
// window for companions (<= 0 selects DefaultGroupWindow).
func NewGroupCommitter(window time.Duration) *GroupCommitter {
	if window <= 0 {
		window = DefaultGroupWindow
	}
	g := &GroupCommitter{
		window: window,
		reqs:   make(chan *commitReq, maxGroupBatch),
		stop:   make(chan struct{}),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

// Append submits one record and blocks until it is written AND
// fsync'd (or failed). Safe for concurrent use.
//
//tplvet:hotpath
func (g *GroupCommitter) Append(j *Journal, version uint32, body []byte) error {
	req := &commitReq{j: j, version: version, body: body, done: make(chan error, 1)}
	// The read lock is held across the send: once Close has the write
	// lock no new request can be in flight, so the leader's final drain
	// cannot miss one.
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return ErrCommitterClosed
	}
	g.reqs <- req
	g.mu.RUnlock()
	return <-req.done
}

// Close flushes pending requests and stops the leader. Appends after
// Close fail with ErrCommitterClosed.
func (g *GroupCommitter) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.wg.Wait()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	close(g.stop)
	g.wg.Wait()
	return nil
}

// run is the leader loop: block for a first request, linger up to the
// window collecting companions, commit the group.
func (g *GroupCommitter) run() {
	defer g.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var batch []*commitReq
	for {
		var first *commitReq
		select {
		case first = <-g.reqs:
		case <-g.stop:
			g.flush(g.drainPending())
			return
		}
		batch = append(batch[:0], first)
		timer.Reset(g.window)
	collect:
		for len(batch) < maxGroupBatch {
			select {
			case req := <-g.reqs:
				batch = append(batch, req)
			case <-timer.C:
				break collect
			case <-g.stop:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		g.flush(batch)
	}
}

// drainPending empties the queue without blocking (shutdown path; the
// closed flag guarantees no concurrent senders remain).
func (g *GroupCommitter) drainPending() []*commitReq {
	var batch []*commitReq
	for {
		select {
		case req := <-g.reqs:
			batch = append(batch, req)
		default:
			return batch
		}
	}
}

// flush commits one group: writes in arrival order, one fsync per
// distinct journal, acks last.
//
//tplvet:hotpath
func (g *GroupCommitter) flush(batch []*commitReq) {
	if len(batch) == 0 {
		return
	}
	// Writes, in order. The first write error poisons its journal for
	// the rest of the group; other journals are unaffected.
	poisoned := make(map[*Journal]error)
	// Journals with >= 1 successful write, dedup'd; a group touches at
	// most one journal per request, so len(batch) bounds it exactly.
	written := make([]*Journal, 0, len(batch))
	seen := make(map[*Journal]bool)
	for _, req := range batch {
		if err := poisoned[req.j]; err != nil {
			// The journal is already poisoned: this group is failing, so
			// the error construction below is not steady-state work.
			//tplvet:allow hotalloc runs only after an append error poisoned the journal; the group is already failing, not hot
			req.err = fmt.Errorf("persist: earlier append in commit group failed: %w", err)
			continue
		}
		if err := req.j.Append(req.version, req.body); err != nil {
			poisoned[req.j] = err
			req.err = err
			continue
		}
		if !seen[req.j] {
			seen[req.j] = true
			written = append(written, req.j)
		}
	}
	// One fsync per journal — even a later-poisoned one, whose earlier
	// intact records still need durability before their acks.
	synced := make(map[*Journal]error, len(written))
	for _, j := range written {
		synced[j] = j.Sync()
	}
	// Acks after the fsyncs: nothing is acknowledged before it is on
	// stable storage.
	for _, req := range batch {
		if req.err != nil {
			req.done <- req.err
			continue
		}
		req.done <- synced[req.j]
	}
}
