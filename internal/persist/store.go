package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Snapshot and journal file suffixes inside a store directory.
const (
	snapSuffix    = ".snap"
	snapTmpSuffix = ".snap.tmp"
	journalSuffix = ".journal"
	tombSuffix    = ".tomb"
	tombTmpSuffix = ".tomb.tmp"
)

// ErrNoSnapshot is returned by LoadSnapshot when the named session has
// no snapshot on disk.
var ErrNoSnapshot = errors.New("persist: no snapshot")

// Store is a directory of per-session snapshots and journals. Snapshot
// writes are atomic (write temp, fsync, rename), so the file named
// <session>.snap is always the last good snapshot: a crash mid-write
// leaves at worst an ignorable .snap.tmp next to it.
//
// A Store's methods are safe for concurrent use on distinct session
// names; per-name serialization is the caller's job (the service holds
// its per-session step mutex across persist calls).
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a state directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating state dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// checkSessionName rejects names that would escape the store directory
// or collide with its file naming. The service validates names at
// session creation; this re-validates at the trust boundary so the
// store stays safe under any caller.
func checkSessionName(name string) error {
	if name == "" {
		return errors.New("persist: empty session name")
	}
	if len(name) > 200 {
		return errors.New("persist: session name longer than 200 bytes")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("persist: session name %q contains a path separator", name)
	}
	return nil
}

func (s *Store) snapPath(name string) string    { return filepath.Join(s.dir, name+snapSuffix) }
func (s *Store) journalPath(name string) string { return filepath.Join(s.dir, name+journalSuffix) }

// SaveSnapshot atomically replaces the session's snapshot: the envelope
// is written to a temp file, fsynced, and renamed over the previous
// snapshot, then the directory entry is fsynced. At no point does a
// crash leave the store without the last good snapshot.
func (s *Store) SaveSnapshot(name string, version uint32, body []byte) error {
	if err := checkSessionName(name); err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, name+snapTmpSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating snapshot temp: %w", err)
	}
	if err := EncodeEnvelope(f, version, body); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath(name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Errors are ignored: not every filesystem supports it, and the
// rename itself already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// LoadSnapshot reads and verifies the session's snapshot, returning its
// schema version and body. ErrNoSnapshot means none exists; decode
// errors (ErrBadMagic, ErrTruncated, ErrChecksum, ErrTooLarge) mean the
// file exists but cannot be trusted.
func (s *Store) LoadSnapshot(name string) (version uint32, body []byte, err error) {
	if err := checkSessionName(name); err != nil {
		return 0, nil, err
	}
	f, err := os.Open(s.snapPath(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil, fmt.Errorf("%w: %q", ErrNoSnapshot, name)
		}
		return 0, nil, fmt.Errorf("persist: opening snapshot: %w", err)
	}
	defer f.Close()
	return DecodeEnvelope(f)
}

// SnapshotStat reports when the session's snapshot was last written
// and its size, without reading it — boot-time restore uses the mtime
// as the snapshot's age so operators see honest staleness, not the
// restart time.
func (s *Store) SnapshotStat(name string) (modTime time.Time, size int64, err error) {
	if err := checkSessionName(name); err != nil {
		return time.Time{}, 0, err
	}
	info, err := os.Stat(s.snapPath(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return time.Time{}, 0, fmt.Errorf("%w: %q", ErrNoSnapshot, name)
		}
		return time.Time{}, 0, fmt.Errorf("persist: stat snapshot: %w", err)
	}
	return info.ModTime(), info.Size(), nil
}

// List returns the names of all sessions with a snapshot on disk,
// sorted. Stray temp files and journals are not listed — a session's
// journal without a snapshot is unrecoverable by construction (the
// initial snapshot is written at session creation, before the first
// journal record).
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: listing state dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(n, snapSuffix) && !strings.HasSuffix(n, snapTmpSuffix) {
			names = append(names, strings.TrimSuffix(n, snapSuffix))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes the session's snapshot and journal (missing files are
// fine: Remove is how Delete cleans up half-created sessions too).
func (s *Store) Remove(name string) error {
	if err := checkSessionName(name); err != nil {
		return err
	}
	var firstErr error
	for _, p := range []string{s.snapPath(name), s.journalPath(name), filepath.Join(s.dir, name+snapTmpSuffix)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) && firstErr == nil {
			firstErr = fmt.Errorf("persist: removing %s: %w", p, err)
		}
	}
	return firstErr
}

func (s *Store) tombPath(name string) string { return filepath.Join(s.dir, name+tombSuffix) }

// SaveTombstone durably records that the named session migrated to the
// shard at location (a base URL). The write is atomic like snapshots:
// temp, fsync, rename — a restarted shard must keep redirecting, so a
// tombstone is part of the session's durable state.
func (s *Store) SaveTombstone(name, location string) error {
	if err := checkSessionName(name); err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, name+tombTmpSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating tombstone temp: %w", err)
	}
	if _, err := f.WriteString(location + "\n"); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: writing tombstone: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: syncing tombstone: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: closing tombstone: %w", err)
	}
	if err := os.Rename(tmp, s.tombPath(name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publishing tombstone: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// LoadTombstones returns every persisted session -> new-owner redirect.
func (s *Store) LoadTombstones() (map[string]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: listing state dir: %w", err)
	}
	tombs := make(map[string]string)
	for _, e := range entries {
		n := e.Name()
		if !e.Type().IsRegular() || !strings.HasSuffix(n, tombSuffix) || strings.HasSuffix(n, tombTmpSuffix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, n))
		if err != nil {
			return nil, fmt.Errorf("persist: reading tombstone %s: %w", n, err)
		}
		tombs[strings.TrimSuffix(n, tombSuffix)] = strings.TrimSpace(string(data))
	}
	return tombs, nil
}

// RemoveTombstone deletes a session's redirect (a session re-created or
// migrated back under the name supersedes it). Missing files are fine.
func (s *Store) RemoveTombstone(name string) error {
	if err := checkSessionName(name); err != nil {
		return err
	}
	if err := os.Remove(s.tombPath(name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("persist: removing tombstone: %w", err)
	}
	return nil
}
