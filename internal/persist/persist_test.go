package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEnvelopeRoundTrip(t *testing.T) {
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for _, body := range bodies {
		var buf bytes.Buffer
		if err := EncodeEnvelope(&buf, 7, body); err != nil {
			t.Fatal(err)
		}
		version, back, err := DecodeEnvelope(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if version != 7 || !bytes.Equal(back, body) {
			t.Fatalf("round trip mangled: version %d, %d bytes", version, len(back))
		}
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeEnvelope(&buf, 1, []byte("the leakage series")); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	// Every truncation fails with ErrTruncated.
	for cut := 0; cut < len(wire); cut++ {
		if _, _, err := DecodeEnvelope(bytes.NewReader(wire[:cut])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
	// Every single-bit flip fails with a typed error (magic, length,
	// checksum or body corruption — never a silent success, because the
	// checksum covers the body and the header fields guard themselves).
	for i := 0; i < len(wire); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), wire...)
			flipped[i] ^= 1 << bit
			_, _, err := DecodeEnvelope(bytes.NewReader(flipped))
			switch {
			case err == nil:
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, bit)
			case errors.Is(err, ErrBadMagic), errors.Is(err, ErrChecksum),
				errors.Is(err, ErrTruncated), errors.Is(err, ErrTooLarge):
			default:
				t.Fatalf("bit flip at byte %d bit %d: untyped error %v", i, bit, err)
			}
		}
	}
	if _, _, err := DecodeEnvelope(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty input: %v", err)
	}
}

func TestStoreSaveLoadList(t *testing.T) {
	s := testStore(t)
	if _, _, err := s.LoadSnapshot("ghost"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing snapshot: %v", err)
	}
	if err := s.SaveSnapshot("alpha", 3, []byte("state-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot("beta", 3, []byte("state-b")); err != nil {
		t.Fatal(err)
	}
	// Overwrite is atomic-replace: the new body wins.
	if err := s.SaveSnapshot("alpha", 4, []byte("state-a2")); err != nil {
		t.Fatal(err)
	}
	version, body, err := s.LoadSnapshot("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if version != 4 || string(body) != "state-a2" {
		t.Fatalf("got version %d body %q", version, body)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("List = %v", names)
	}
	if err := s.Remove("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadSnapshot("alpha"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("after Remove: %v", err)
	}
	if err := s.Remove("alpha"); err != nil {
		t.Fatalf("double Remove: %v", err)
	}
}

func TestStoreRejectsHostileNames(t *testing.T) {
	s := testStore(t)
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, "../escape"} {
		if err := s.SaveSnapshot(name, 1, nil); err == nil {
			t.Fatalf("name %q accepted", name)
		}
		if _, _, err := s.LoadSnapshot(name); err == nil {
			t.Fatalf("load of %q accepted", name)
		}
	}
}

// TestStoreIgnoresStrayTemp: a crash can leave a .snap.tmp behind; it
// must neither be listed nor shadow the last good snapshot.
func TestStoreIgnoresStrayTemp(t *testing.T) {
	s := testStore(t)
	if err := s.SaveSnapshot("sess", 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "sess"+snapTmpSuffix), []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "sess" {
		t.Fatalf("List = %v", names)
	}
	if _, body, err := s.LoadSnapshot("sess"); err != nil || string(body) != "good" {
		t.Fatalf("load: %q, %v", body, err)
	}
}

func TestJournalAppendReplayReset(t *testing.T) {
	s := testStore(t)
	// Replay of a journal that never existed: zero records, no error.
	res, err := s.ReplayJournal("sess", func(uint32, []byte) error { t.Fatal("callback on empty journal"); return nil })
	if err != nil || res.Records != 0 || res.Torn {
		t.Fatalf("empty replay: %+v, %v", res, err)
	}
	j, err := s.OpenJournal("sess")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	want := [][]byte{[]byte("rec-1"), []byte("rec-2"), []byte("rec-3")}
	for _, rec := range want {
		if err := j.Append(2, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	res, err = s.ReplayJournal("sess", func(version uint32, body []byte) error {
		if version != 2 {
			t.Fatalf("record version %d", version)
		}
		got = append(got, append([]byte(nil), body...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.Records != len(want) {
		t.Fatalf("replay: %+v", res)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: %q != %q", i, got[i], want[i])
		}
	}
	// Reset empties it; appends continue to work afterwards.
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	res, err = s.ReplayJournal("sess", func(uint32, []byte) error { return nil })
	if err != nil || res.Records != 0 {
		t.Fatalf("after reset: %+v, %v", res, err)
	}
	if err := j.Append(2, []byte("post-reset")); err != nil {
		t.Fatal(err)
	}
	res, err = s.ReplayJournal("sess", func(uint32, []byte) error { return nil })
	if err != nil || res.Records != 1 {
		t.Fatalf("after reset+append: %+v, %v", res, err)
	}
}

// TestJournalTornTail simulates a crash mid-append at every possible
// byte boundary of the final record: the intact prefix must replay,
// the tail must be flagged torn, and nothing must error or panic.
func TestJournalTornTail(t *testing.T) {
	s := testStore(t)
	j, err := s.OpenJournal("sess")
	if err != nil {
		t.Fatal(err)
	}
	full := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var offsets []int64
	for _, rec := range full {
		if err := j.Append(1, rec); err != nil {
			t.Fatal(err)
		}
		off, err := j.f.Seek(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
	}
	j.Close()
	path := filepath.Join(s.Dir(), "sess"+journalSuffix)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(whole)); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantIntact := 0
		for _, off := range offsets {
			if cut >= off {
				wantIntact++
			}
		}
		res, err := s.ReplayJournal("sess", func(uint32, []byte) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if res.Records != wantIntact {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, res.Records, wantIntact)
		}
		onBoundary := cut == 0 || cut == offsets[len(offsets)-1] ||
			(wantIntact > 0 && cut == offsets[wantIntact-1])
		if res.Torn == onBoundary {
			t.Fatalf("cut %d: torn=%v on boundary=%v", cut, res.Torn, onBoundary)
		}
	}
}

// TestJournalCorruptMiddleStopsReplay: a checksum-corrupt record in the
// middle ends the replay there — later records are unreachable (no
// trustworthy framing past the corruption) but earlier ones survive.
func TestJournalCorruptMiddleStopsReplay(t *testing.T) {
	s := testStore(t)
	j, err := s.OpenJournal("sess")
	if err != nil {
		t.Fatal(err)
	}
	var firstEnd int64
	for i, rec := range [][]byte{[]byte("keep"), []byte("corrupt-me"), []byte("unreachable")} {
		if err := j.Append(1, rec); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if firstEnd, err = j.f.Seek(0, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.Close()
	path := filepath.Join(s.Dir(), "sess"+journalSuffix)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole[firstEnd+envelopeHeaderSize] ^= 0xFF // flip a body byte of record 2
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := s.ReplayJournal("sess", func(uint32, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 || !res.Torn {
		t.Fatalf("replay after mid-corruption: %+v", res)
	}
}
