// Package persist is the durability substrate of the release service:
// versioned, checksummed state envelopes, an atomic snapshot store, and
// per-session append-only step journals. Recovery is "last good
// snapshot + replayed journal tail", so a crash — even a SIGKILL mid
// write — loses at most the torn tail of the record being appended,
// never the accumulated leakage accounting.
//
// The package deals only in opaque body bytes; what the bytes mean
// (gob-encoded session state, step records) is the caller's business.
// This keeps the corruption surface auditable: every read path here is
// fuzzed to never panic and never hand back bytes whose checksum does
// not match.
package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Envelope wire layout (all integers little-endian):
//
//	offset  0: magic "TPLSNAP\x01" (8 bytes)
//	offset  8: schema version (uint32)
//	offset 12: body length (uint64)
//	offset 20: SHA-256 of version ‖ body length ‖ body (32 bytes)
//	offset 52: body
//
// The checksum covers the header fields, not just the body: a flipped
// bit in the version or length must fail closed, not decode into a
// plausible envelope with the wrong schema.
var envelopeMagic = [8]byte{'T', 'P', 'L', 'S', 'N', 'A', 'P', 1}

const envelopeHeaderSize = 8 + 4 + 8 + sha256.Size

// maxBodyBytes bounds the body length a decoder will believe. A flipped
// bit in the length field must not translate into a multi-gigabyte
// allocation; real snapshots (100k users, hundreds of steps) are a few
// tens of megabytes. (1<<31 - 1 rather than 1<<31 so the constant still
// fits an int on 32-bit platforms.)
const maxBodyBytes = 1<<31 - 1

// Typed decode failures. Every corrupt input maps to one of these;
// none of them is ever a panic.
var (
	// ErrBadMagic: the input does not start with the envelope magic —
	// not a snapshot file at all, or one from an incompatible lineage.
	ErrBadMagic = errors.New("persist: bad envelope magic")
	// ErrTruncated: the input ends before the declared body does.
	ErrTruncated = errors.New("persist: truncated envelope")
	// ErrChecksum: the body does not hash to the recorded checksum.
	ErrChecksum = errors.New("persist: body checksum mismatch")
	// ErrTooLarge: the declared body length exceeds the sanity bound.
	ErrTooLarge = errors.New("persist: declared body length implausible")
)

// EncodeEnvelope frames a body with magic, schema version and checksum.
//
//tplvet:hotpath
func EncodeEnvelope(w io.Writer, version uint32, body []byte) error {
	if len(body) > maxBodyBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(body))
	}
	hdr := make([]byte, envelopeHeaderSize)
	copy(hdr, envelopeMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(body)))
	sum := envelopeSum(hdr[8:20], body)
	copy(hdr[20:], sum[:])
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// DecodeEnvelope reads one envelope, verifying magic, length and
// checksum. It returns the schema version and body; callers decide what
// versions they accept. Trailing data after the body is left unread
// (journals frame many envelopes back to back).
func DecodeEnvelope(r io.Reader) (version uint32, body []byte, err error) {
	hdr := make([]byte, envelopeHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: header", ErrTruncated)
		}
		return 0, nil, err
	}
	if !bytes.Equal(hdr[:8], envelopeMagic[:]) {
		return 0, nil, ErrBadMagic
	}
	version = binary.LittleEndian.Uint32(hdr[8:])
	n := binary.LittleEndian.Uint64(hdr[12:])
	if n > maxBodyBytes {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	// Read the body in bounded chunks: a corrupt length field must cost
	// at most the bytes actually present, not an up-front allocation of
	// whatever the field claims.
	const chunk = 1 << 20
	body = make([]byte, 0, min(n, chunk))
	for uint64(len(body)) < n {
		next := min(n-uint64(len(body)), chunk)
		start := len(body)
		body = append(body, make([]byte, next)...)
		if _, err := io.ReadFull(r, body[start:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return 0, nil, fmt.Errorf("%w: body", ErrTruncated)
			}
			return 0, nil, err
		}
	}
	sum := envelopeSum(hdr[8:20], body)
	if !bytes.Equal(sum[:], hdr[20:]) {
		return 0, nil, ErrChecksum
	}
	return version, body, nil
}

// envelopeSum hashes the checksummed span: the version and length
// fields followed by the body.
func envelopeSum(versionAndLen, body []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(versionAndLen)
	h.Write(body)
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}
