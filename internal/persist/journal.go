package persist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
)

// The journal is the write-ahead half of recovery: snapshots are
// coalesced (expensive, every N steps), journal records are appended
// every step, and recovery replays the journal tail on top of the last
// snapshot. Records are full envelopes back to back, so each carries
// its own checksum; a SIGKILL mid-append leaves a torn final record,
// which Replay detects and ignores — everything before it is intact.
//
// Appends are plain writes (no per-record fsync): process death never
// loses page-cache data, so the kill-and-recover contract holds without
// paying an fsync per step; only a whole-machine power loss can lose
// the un-synced tail. Sync is exposed for callers that want a stronger
// barrier at checkpoints.

// Journal is an append-only record log for one session.
type Journal struct {
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) the session's journal for
// appending.
func (s *Store) OpenJournal(name string) (*Journal, error) {
	if err := checkSessionName(name); err != nil {
		return nil, err
	}
	path := s.journalPath(name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Append writes one record (an envelope framing body) to the journal.
//
//tplvet:hotpath
func (j *Journal) Append(version uint32, body []byte) error {
	return EncodeEnvelope(j.f, version, body)
}

// Sync flushes appended records to stable storage.
func (j *Journal) Sync() error { return j.f.Sync() }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// Reset truncates the journal to empty — called right after a snapshot
// lands, since everything the journal held is now covered by it. The
// order (snapshot first, truncate second) means a crash between the two
// leaves a journal whose records are all already in the snapshot;
// replay must therefore tolerate records at or before the snapshot's
// position, which the service does by skipping records by step index.
func (j *Journal) Reset() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: truncating journal: %w", err)
	}
	// O_APPEND writes position themselves at the (now zero) end; no seek
	// is needed, and the file offset staying large is harmless.
	return nil
}

// ReplayResult reports what a journal replay found.
type ReplayResult struct {
	// Records is the number of intact records handed to the callback.
	Records int
	// Torn reports whether the journal ended in a torn or corrupt
	// record (ignored — the expected shape after a crash mid-append).
	Torn bool
}

// ReplayJournal streams every intact record of the session's journal to
// fn, in order. It stops cleanly at EOF or at the first torn/corrupt
// record — everything before a bad record is trusted (each record
// carries its own checksum), everything from it on is not. A missing
// journal file replays zero records: a session that never stepped has
// nothing to recover. An error from fn aborts the replay.
func (s *Store) ReplayJournal(name string, fn func(version uint32, body []byte) error) (ReplayResult, error) {
	var res ReplayResult
	if err := checkSessionName(name); err != nil {
		return res, err
	}
	f, err := os.Open(s.journalPath(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return res, nil
		}
		return res, fmt.Errorf("persist: opening journal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		if _, err := br.Peek(1); errors.Is(err, io.EOF) {
			return res, nil // file ends exactly on a record boundary
		}
		version, body, err := DecodeEnvelope(br)
		if err != nil {
			if isTornTail(err) {
				res.Torn = true
				return res, nil
			}
			return res, err
		}
		if err := fn(version, body); err != nil {
			return res, err
		}
		res.Records++
	}
}

// isTornTail classifies a decode failure as an ignorable tail. Torn
// writes surface as truncation; a crash can also tear *within* the
// checksum or magic bytes of the final record, so checksum and magic
// failures terminate the replay the same way (there is no record
// boundary to resynchronize on — and trusting anything after a corrupt
// record would mean trusting unchecksummed offsets).
func isTornTail(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTooLarge)
}
