package persist

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestJournal(t *testing.T, s *Store, name string) *Journal {
	t.Helper()
	j, err := s.OpenJournal(name)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", name, err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func replayBodies(t *testing.T, s *Store, name string) []string {
	t.Helper()
	var bodies []string
	if _, err := s.ReplayJournal(name, func(version uint32, body []byte) error {
		bodies = append(bodies, string(body))
		return nil
	}); err != nil {
		t.Fatalf("ReplayJournal(%s): %v", name, err)
	}
	return bodies
}

// Concurrent appenders across several journals: every record must land,
// and each journal's records must replay in the order its (single)
// appender submitted them — the FIFO contract sessions rely on.
func TestGroupCommitterConcurrentOrdering(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(500 * time.Microsecond)
	defer g.Close()

	const journals = 8
	const perJournal = 50
	var wg sync.WaitGroup
	for i := 0; i < journals; i++ {
		name := fmt.Sprintf("sess-%d", i)
		j := newTestJournal(t, s, name)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perJournal; k++ {
				body := []byte(fmt.Sprintf("%s:%d", name, k))
				if err := g.Append(j, 1, body); err != nil {
					t.Errorf("Append(%s, %d): %v", name, k, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	for i := 0; i < journals; i++ {
		name := fmt.Sprintf("sess-%d", i)
		bodies := replayBodies(t, s, name)
		if len(bodies) != perJournal {
			t.Fatalf("journal %s: replayed %d records, want %d", name, len(bodies), perJournal)
		}
		for k, b := range bodies {
			want := fmt.Sprintf("%s:%d", name, k)
			if b != want {
				t.Fatalf("journal %s record %d: got %q, want %q", name, k, b, want)
			}
		}
	}
}

// A write failure must poison only its own journal for the rest of the
// group; a healthy journal in the same group still commits.
func TestGroupCommitterPoisonedJournal(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A wide window so both appends join one group.
	g := NewGroupCommitter(200 * time.Millisecond)
	defer g.Close()

	bad := newTestJournal(t, s, "bad")
	good := newTestJournal(t, s, "good")
	// Closing the underlying file makes every subsequent write fail.
	bad.f.Close()

	var wg sync.WaitGroup
	var badErr, goodErr error
	wg.Add(2)
	go func() { defer wg.Done(); badErr = g.Append(bad, 1, []byte("doomed")) }()
	go func() { defer wg.Done(); goodErr = g.Append(good, 1, []byte("fine")) }()
	wg.Wait()

	if badErr == nil {
		t.Fatal("append to closed journal: want error, got nil")
	}
	if goodErr != nil {
		t.Fatalf("append to healthy journal in same group: %v", goodErr)
	}
	if bodies := replayBodies(t, s, "good"); len(bodies) != 1 || bodies[0] != "fine" {
		t.Fatalf("good journal replay: %v", bodies)
	}
}

// Close must flush whatever is queued, and appends after Close must be
// refused rather than silently dropped.
func TestGroupCommitterCloseFlushesAndRefuses(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A long window so records are still lingering when Close arrives.
	g := NewGroupCommitter(time.Minute)
	j := newTestJournal(t, s, "sess")

	const n = 5
	var wg sync.WaitGroup
	errs := make([]error, n)
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[k] = g.Append(j, 1, []byte(fmt.Sprintf("r%d", k)))
		}()
	}
	// Let the appends reach the queue before closing.
	time.Sleep(20 * time.Millisecond)
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("append %d during close: %v", k, err)
		}
	}
	if bodies := replayBodies(t, s, "sess"); len(bodies) != n {
		t.Fatalf("replayed %d records after Close, want %d", len(bodies), n)
	}
	if err := g.Append(j, 1, []byte("late")); err != ErrCommitterClosed {
		t.Fatalf("append after Close: got %v, want ErrCommitterClosed", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
