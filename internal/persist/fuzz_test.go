package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeEnvelope is the satellite coverage task: arbitrary input —
// truncated, bit-flipped, wrong-version, wrong-checksum — must never
// panic, never allocate unbounded memory, and never return a body whose
// checksum was not verified.
func FuzzDecodeEnvelope(f *testing.F) {
	var good bytes.Buffer
	if err := EncodeEnvelope(&good, 1, []byte("seed body")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add(envelopeMagic[:])
	truncated := good.Bytes()[:len(good.Bytes())-3]
	f.Add(truncated)
	flipped := append([]byte(nil), good.Bytes()...)
	flipped[10] ^= 0x40 // version field
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		version, body, err := DecodeEnvelope(bytes.NewReader(data))
		if err != nil {
			if body != nil {
				t.Fatalf("error %v returned alongside a body", err)
			}
			return
		}
		// A successful decode must mean the input literally was a valid
		// envelope: re-encoding must reproduce the consumed prefix.
		var re bytes.Buffer
		if err := EncodeEnvelope(&re, version, body); err != nil {
			t.Fatalf("re-encode of decoded envelope failed: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
			t.Fatal("decode accepted bytes that do not round-trip")
		}
	})
}

// FuzzReplayJournal feeds arbitrary bytes as a journal file: replay
// must never panic, never error (corruption is a torn tail by
// definition), and only ever deliver checksum-verified records.
func FuzzReplayJournal(f *testing.F) {
	var good bytes.Buffer
	_ = EncodeEnvelope(&good, 1, []byte("r1"))
	_ = EncodeEnvelope(&good, 1, []byte("r2"))
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add(good.Bytes()[:good.Len()-5])
	garbage := append(append([]byte(nil), good.Bytes()...), 0xDE, 0xAD)
	f.Add(garbage)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "fuzz.journal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ReplayJournal("fuzz", func(version uint32, body []byte) error { return nil })
		if err != nil {
			t.Fatalf("replay errored on arbitrary bytes: %v", err)
		}
		if res.Records < 0 {
			t.Fatal("negative record count")
		}
	})
}

// FuzzLoadSnapshot: arbitrary snapshot files never load unless intact.
func FuzzLoadSnapshot(f *testing.F) {
	var good bytes.Buffer
	_ = EncodeEnvelope(&good, 1, []byte("snapshot body"))
	f.Add(good.Bytes())
	f.Add([]byte("not a snapshot"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "s.snap"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, body, err := s.LoadSnapshot("s")
		if err == nil {
			// Loaded means checksummed: the file must be a whole valid envelope.
			var re bytes.Buffer
			_ = EncodeEnvelope(&re, 0, body)
			if re.Len() > len(data) {
				t.Fatal("loaded a snapshot shorter than its own envelope")
			}
			return
		}
		if errors.Is(err, ErrNoSnapshot) {
			t.Fatal("existing file reported as missing")
		}
	})
}
