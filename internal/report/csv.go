package report

import (
	"encoding/csv"
	"io"
)

// csvRenderer writes the header row then the data rows, RFC-4180
// quoted. The title and notes have no CSV representation and are
// omitted, keeping the output directly loadable by spreadsheets and
// plotting scripts. Ragged tables are padded to a rectangle with
// empty cells so strict readers (e.g. encoding/csv with its default
// FieldsPerRecord) accept every record.
type csvRenderer struct {
	scratch []string
}

func (r *csvRenderer) RenderTable(w io.Writer, t *Table) error {
	cols := t.Columns()
	cw := csv.NewWriter(w)
	if err := cw.Write(r.rect(t.Header, cols)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(r.rect(row, cols)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// rect pads cells with empty strings to cols, reusing scratch space.
func (r *csvRenderer) rect(cells []string, cols int) []string {
	if len(cells) == cols {
		return cells
	}
	if cap(r.scratch) < cols {
		r.scratch = make([]string, cols)
	}
	out := r.scratch[:cols]
	n := copy(out, cells)
	for i := n; i < cols; i++ {
		out[i] = ""
	}
	return out
}
