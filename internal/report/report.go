// Package report renders experiment results as titled tables of
// formatted cells in four interchangeable formats: aligned text (for
// terminals), CSV (for spreadsheets and plotting scripts), GitHub
// Markdown (for the generated documentation, notably EXPERIMENTS.md),
// and JSON lines (for machine consumers; round-trippable through
// ParseJSONLines).
//
// The building blocks compose in three layers:
//
//   - Table is the unit of output: a titled grid of cells plus notes.
//   - Renderer writes one Table in one Format; NewRenderer picks the
//     implementation.
//   - Writer streams a whole document — an optional preamble followed
//     by any number of tables — so long experiment runs emit each
//     table as soon as it is computed. Report is the buffered
//     convenience wrapper over Writer.
//
// Renderers are streaming and allocation-conscious: they buffer writes,
// reuse scratch space across rows, and never materialize the rendered
// document in memory.
package report

import (
	"fmt"
	"io"
)

// Report groups tables under a document title with optional preamble
// notes, rendering the whole experiment run as one document.
type Report struct {
	Title  string
	Notes  []string
	Tables []*Table
}

// Add appends tables to the report.
func (r *Report) Add(tables ...*Table) { r.Tables = append(r.Tables, tables...) }

// Render writes the whole report in the given format.
func (r *Report) Render(w io.Writer, f Format) error {
	wr, err := NewWriter(w, f)
	if err != nil {
		return err
	}
	if r.Title != "" || len(r.Notes) > 0 {
		if err := wr.Header(r.Title, r.Notes...); err != nil {
			return err
		}
	}
	for i, t := range r.Tables {
		if t == nil {
			return fmt.Errorf("report: table %d is nil", i)
		}
		if err := wr.WriteTable(t); err != nil {
			return err
		}
	}
	return wr.Flush()
}
