package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// sample is the table every format golden test renders: it exercises a
// title, ragged rows, notes, and cells needing Markdown/CSV escaping.
func sample() *Table {
	t := &Table{
		Title:  "Fig X: sample leakage series",
		Header: []string{"t", "BPL", "label"},
	}
	t.AddRow("1", "0.1000", "start")
	t.AddRow("2", "0.1900", "a|b, \"quoted\"")
	t.AddRow("10", "0.6513")
	t.AddNote("supremum: 0.6931")
	t.AddNote("pipe | in a note")
	return t
}

func TestGoldenPerFormat(t *testing.T) {
	for _, f := range Formats() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := sample().RenderFormat(&buf, f); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "sample."+f.String()+".golden")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if buf.String() != string(want) {
				t.Errorf("%s output drifted from golden\n--- got ---\n%s--- want ---\n%s",
					f, buf.String(), want)
			}
		})
	}
}

func TestDocumentGoldenPerFormat(t *testing.T) {
	second := &Table{
		Title:  "Table Y: second section",
		Header: []string{"k", "v"},
		Rows:   [][]string{{"rows", "3"}},
	}
	for _, f := range Formats() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			rep := &Report{Title: "Sample run", Notes: []string{"seed 1, quick scales"}}
			rep.Add(sample(), second)
			var buf bytes.Buffer
			if err := rep.Render(&buf, f); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "doc."+f.String()+".golden")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if buf.String() != string(want) {
				t.Errorf("%s document drifted from golden\n--- got ---\n%s--- want ---\n%s",
					f, buf.String(), want)
			}
		})
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	orig := sample()
	var buf bytes.Buffer
	if err := orig.JSONLines(&buf); err != nil {
		t.Fatal(err)
	}
	tables, err := ParseJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("round trip produced %d tables, want 1", len(tables))
	}
	got := tables[0]
	if got.Title != orig.Title {
		t.Errorf("title %q != %q", got.Title, orig.Title)
	}
	if !reflect.DeepEqual(got.Header, orig.Header) {
		t.Errorf("header %v != %v", got.Header, orig.Header)
	}
	if !reflect.DeepEqual(got.Rows, orig.Rows) {
		t.Errorf("rows %v != %v", got.Rows, orig.Rows)
	}
	if !reflect.DeepEqual(got.Notes, orig.Notes) {
		t.Errorf("notes %v != %v", got.Notes, orig.Notes)
	}
}

func TestJSONLinesDocumentRoundTrip(t *testing.T) {
	rep := &Report{Title: "doc", Notes: []string{"preamble"}}
	rep.Add(sample(), &Table{Title: "second", Header: []string{"a"}, Rows: [][]string{{"1"}}})
	var buf bytes.Buffer
	if err := rep.Render(&buf, JSONLines); err != nil {
		t.Fatal(err)
	}
	tables, err := ParseJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	if tables[1].Title != "second" || len(tables[1].Rows) != 1 {
		t.Errorf("second table corrupted: %+v", tables[1])
	}
}

func TestParseJSONLinesErrors(t *testing.T) {
	cases := map[string]string{
		"row before table":  `{"type":"row","cells":["1"]}`,
		"note before table": `{"type":"note","text":"n"}`,
		"unknown type":      `{"type":"blob"}`,
		"bad json":          `{"type":`,
	}
	for name, in := range cases {
		if _, err := ParseJSONLines(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Blank lines and report preambles are tolerated.
	ok := "{\"type\":\"report\",\"title\":\"d\"}\n\n{\"type\":\"table\",\"title\":\"t\"}\n"
	tables, err := ParseJSONLines(strings.NewReader(ok))
	if err != nil || len(tables) != 1 {
		t.Errorf("tolerant parse failed: %v, %d tables", err, len(tables))
	}
}

func TestParseFormat(t *testing.T) {
	good := map[string]Format{
		"text": Text, "TXT": Text, "": Text,
		"csv": CSV,
		"md":  Markdown, "markdown": Markdown,
		"json": JSONLines, "jsonl": JSONLines, "ndjson": JSONLines,
	}
	for in, want := range good {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("ParseFormat(yaml) should fail")
	}
	// Canonical spellings parse back to themselves.
	for _, f := range Formats() {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFormat(%v.String()) = %v, %v", f, got, err)
		}
	}
}

func TestTextAlignmentMatchesLegacyLayout(t *testing.T) {
	// The Text format is the seed repo's original rendering: title,
	// padded header, dashed rule of total column width, padded rows,
	// "note:" lines, no trailing whitespace on any line.
	tb := &Table{
		Title:  "T",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell", "x"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	want := "T\n" +
		"a          long-header\n" +
		"------------------------\n" +
		"wide-cell  x\n" +
		"note: n\n"
	if buf.String() != want {
		t.Errorf("got:\n%q\nwant:\n%q", buf.String(), want)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.TrimRight(line, " ") != line {
			t.Errorf("trailing whitespace on %q", line)
		}
	}
}

func TestMarkdownEscapesAndPads(t *testing.T) {
	tb := &Table{
		Title:  "Pipes | everywhere",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1"}, {"x|y", "multi\nline", "extra"}},
	}
	var buf bytes.Buffer
	if err := tb.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Pipes \\| everywhere") {
		t.Errorf("title not escaped: %s", out)
	}
	if !strings.Contains(out, "| x\\|y | multi line | extra |") {
		t.Errorf("cells not escaped/joined: %s", out)
	}
	// Every table line has the same number of pipes (a rectangle).
	var counts []int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "|") {
			counts = append(counts, strings.Count(strings.ReplaceAll(line, "\\|", ""), "|"))
		}
	}
	for _, c := range counts {
		if c != counts[0] {
			t.Errorf("ragged markdown table: pipe counts %v in\n%s", counts, out)
		}
	}
}

func TestWriterHeaderMustComeFirst(t *testing.T) {
	var buf bytes.Buffer
	wr, err := NewWriter(&buf, Text)
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteTable(sample()); err != nil {
		t.Fatal(err)
	}
	if err := wr.Header("late"); err == nil {
		t.Error("Header after WriteTable should fail")
	}
	if wr.Tables() != 1 {
		t.Errorf("Tables() = %d, want 1", wr.Tables())
	}
}

func TestReportNilTable(t *testing.T) {
	rep := &Report{}
	rep.Add(nil)
	if err := rep.Render(&bytes.Buffer{}, Text); err == nil {
		t.Error("nil table should be reported, not crash")
	}
}

func TestCSVIsHeaderFirstAndParseable(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t,BPL,label" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + 3 rows, no title/notes
		t.Errorf("%d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(buf.String(), `"a|b, ""quoted"""`) {
		t.Errorf("csv quoting missing: %s", buf.String())
	}
}
