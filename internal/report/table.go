package report

import "io"

// Table is a rendered experiment result: a titled grid of cells plus
// free-form notes. Cells are preformatted strings — the experiment
// code owns numeric formatting, the renderers own layout. Rows may be
// ragged; renderers that need a rectangle pad with empty cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends one note line.
func (t *Table) AddNote(note string) { t.Notes = append(t.Notes, note) }

// Columns returns the widest row length, counting the header.
func (t *Table) Columns() int {
	n := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > n {
			n = len(row)
		}
	}
	return n
}

// RenderFormat writes the table in the given format.
func (t *Table) RenderFormat(w io.Writer, f Format) error {
	r, err := NewRenderer(f)
	if err != nil {
		return err
	}
	return r.RenderTable(w, t)
}

// Render writes the aligned text rendering (the Text format).
func (t *Table) Render(w io.Writer) error { return t.RenderFormat(w, Text) }

// CSV writes the table as CSV (header row first; title and notes
// omitted).
func (t *Table) CSV(w io.Writer) error { return t.RenderFormat(w, CSV) }

// Markdown writes the table as a GitHub Markdown section.
func (t *Table) Markdown(w io.Writer) error { return t.RenderFormat(w, Markdown) }

// JSONLines writes the table as JSON lines.
func (t *Table) JSONLines(w io.Writer) error { return t.RenderFormat(w, JSONLines) }
