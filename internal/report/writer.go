package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Writer streams a report document: an optional preamble (Header)
// followed by any number of tables, each rendered the moment it
// arrives. Long experiment runs use it to emit results as they are
// computed instead of buffering the whole document.
//
// The document conventions per format:
//
//   - Text: title underlined with '=', notes as prose, one blank line
//     after the preamble and after every table.
//   - CSV: no preamble (pure data); a blank line between tables keeps
//     multi-table documents splittable.
//   - Markdown: title as an H1, notes as paragraphs, tables as H3
//     sections separated by blank lines.
//   - JSONLines: a {"type":"report",...} line, then the tables' lines
//     with no separators — every line of the document is one JSON
//     object.
type Writer struct {
	w      io.Writer
	f      Format
	r      Renderer
	wrote  bool // a preamble or table has been written
	tables int
}

// NewWriter starts a streaming report document on w.
func NewWriter(w io.Writer, f Format) (*Writer, error) {
	r, err := NewRenderer(f)
	if err != nil {
		return nil, err
	}
	return &Writer{w: w, f: f, r: r}, nil
}

// Format returns the document's output format.
func (wr *Writer) Format() Format { return wr.f }

// Header writes the document preamble. It must precede every table.
func (wr *Writer) Header(title string, notes ...string) error {
	if wr.wrote {
		return fmt.Errorf("report: Header must be the first write")
	}
	wr.wrote = true
	bw := bufio.NewWriter(wr.w)
	switch wr.f {
	case Text:
		bw.WriteString(title)
		bw.WriteByte('\n')
		for i := 0; i < len(title); i++ {
			bw.WriteByte('=')
		}
		bw.WriteByte('\n')
		for _, n := range notes {
			bw.WriteString(n)
			bw.WriteByte('\n')
		}
		bw.WriteByte('\n')
	case CSV:
		// CSV is pure data; the preamble has no representation.
	case Markdown:
		bw.WriteString("# ")
		bw.WriteString(mdEscape(title))
		bw.WriteString("\n\n")
		for _, n := range notes {
			bw.WriteString(n)
			bw.WriteString("\n\n")
		}
	case JSONLines:
		enc := json.NewEncoder(bw)
		if err := enc.Encode(jsonLine{Type: "report", Title: title, Notes: notes}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTable renders one table into the document. Every format except
// JSONLines separates tables with one blank line; JSON lines documents
// stay blank-line-free so each line of the file is one JSON object.
func (wr *Writer) WriteTable(t *Table) error {
	wr.wrote = true
	if err := wr.r.RenderTable(wr.w, t); err != nil {
		return err
	}
	wr.tables++
	if wr.f != JSONLines {
		if _, err := io.WriteString(wr.w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Tables returns how many tables have been written.
func (wr *Writer) Tables() int { return wr.tables }

// Flush finishes the document. With the current formats all state is
// already on the wire; Flush exists so callers are insulated from
// future formats that need a trailer.
func (wr *Writer) Flush() error { return nil }
