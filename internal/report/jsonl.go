package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonLine is the wire form of one JSON-lines record. Exactly one of
// the payload groups is populated, keyed by Type:
//
//	{"type":"report","title":"...","notes":[...]}   document preamble
//	{"type":"table","title":"...","header":[...]}   starts a table
//	{"type":"row","cells":[...]}                    one data row
//	{"type":"note","text":"..."}                    one table note
//
// Rows and notes attach to the most recent table line, so a multi-table
// document concatenates cleanly and still parses.
type jsonLine struct {
	Type   string   `json:"type"`
	Title  string   `json:"title,omitempty"`
	Header []string `json:"header,omitempty"`
	Notes  []string `json:"notes,omitempty"`
	Cells  []string `json:"cells,omitempty"`
	Text   string   `json:"text,omitempty"`
}

// jsonRenderer writes one table as JSON lines, streaming row by row.
type jsonRenderer struct{}

func (jsonRenderer) RenderTable(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the line's newline
	if err := enc.Encode(jsonLine{Type: "table", Title: t.Title, Header: t.Header}); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := enc.Encode(jsonLine{Type: "row", Cells: row}); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := enc.Encode(jsonLine{Type: "note", Text: n}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONLines reads a JSON-lines document back into tables,
// inverting the JSONLines renderer (report preamble lines are
// recognized and skipped; blank lines between tables are tolerated).
func ParseJSONLines(r io.Reader) ([]*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var tables []*Table
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line jsonLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("report: line %d: %w", lineNo, err)
		}
		switch line.Type {
		case "report":
			// Document preamble; carries no table content.
		case "table":
			tables = append(tables, &Table{Title: line.Title, Header: line.Header})
		case "row":
			if len(tables) == 0 {
				return nil, fmt.Errorf("report: line %d: row before any table line", lineNo)
			}
			t := tables[len(tables)-1]
			t.Rows = append(t.Rows, line.Cells)
		case "note":
			if len(tables) == 0 {
				return nil, fmt.Errorf("report: line %d: note before any table line", lineNo)
			}
			t := tables[len(tables)-1]
			t.Notes = append(t.Notes, line.Text)
		default:
			return nil, fmt.Errorf("report: line %d: unknown record type %q", lineNo, line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tables, nil
}
