package report

import (
	"bufio"
	"io"
)

// textRenderer writes the aligned-columns terminal layout:
//
//	Title
//	col1  col2
//	------------
//	a     b
//	note: ...
//
// Column widths come from the header and every row; cells beyond the
// header's column count print unpadded. Scratch space (widths, the
// padding run) is reused across tables rendered by the same instance.
type textRenderer struct {
	widths []int
	pad    []byte
}

const textGutter = 2

func (r *textRenderer) RenderTable(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		bw.WriteString(t.Title)
		bw.WriteByte('\n')
	}
	r.measure(t)
	r.line(bw, t.Header)
	total := 0
	for _, wd := range r.widths {
		total += wd + textGutter
	}
	r.rule(bw, total)
	for _, row := range t.Rows {
		r.line(bw, row)
	}
	for _, n := range t.Notes {
		bw.WriteString("note: ")
		bw.WriteString(n)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// measure fills r.widths with the per-column widths of the header's
// columns (the header defines how many columns are aligned).
func (r *textRenderer) measure(t *Table) {
	if cap(r.widths) < len(t.Header) {
		r.widths = make([]int, len(t.Header))
	}
	r.widths = r.widths[:len(t.Header)]
	for i, h := range t.Header {
		r.widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(r.widths) && len(c) > r.widths[i] {
				r.widths[i] = len(c)
			}
		}
	}
	max := 0
	for _, wd := range r.widths {
		if wd > max {
			max = wd
		}
	}
	r.grow(max + textGutter)
}

// grow ensures the reusable padding run holds at least n spaces.
func (r *textRenderer) grow(n int) {
	for len(r.pad) < n {
		r.pad = append(r.pad, ' ')
	}
}

// line writes one row, padding every cell but the last to its column
// width (trailing whitespace is never emitted).
func (r *textRenderer) line(bw *bufio.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			bw.Write(r.pad[:textGutter])
		}
		bw.WriteString(c)
		if i < len(cells)-1 && i < len(r.widths) {
			if n := r.widths[i] - len(c); n > 0 {
				bw.Write(r.pad[:n])
			}
		}
	}
	bw.WriteByte('\n')
}

// rule writes the horizontal separator under the header.
func (r *textRenderer) rule(bw *bufio.Writer, n int) {
	const dashes = "----------------------------------------------------------------"
	for n > 0 {
		k := n
		if k > len(dashes) {
			k = len(dashes)
		}
		bw.WriteString(dashes[:k])
		n -= k
	}
	bw.WriteByte('\n')
}
