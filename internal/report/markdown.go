package report

import (
	"bufio"
	"io"
	"strings"
)

// markdownRenderer writes a GitHub-flavored Markdown section: the title
// as an H3 heading, the grid as a pipe table padded to a rectangle, and
// the notes as a trailing blockquote. Pipe and newline characters in
// cells are escaped so arbitrary cell content cannot break the table.
type markdownRenderer struct{}

func (markdownRenderer) RenderTable(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		bw.WriteString("### ")
		bw.WriteString(mdEscape(t.Title))
		bw.WriteString("\n\n")
	}
	cols := t.Columns()
	if cols > 0 {
		mdRow(bw, t.Header, cols)
		bw.WriteByte('|')
		for i := 0; i < cols; i++ {
			bw.WriteString(" --- |")
		}
		bw.WriteByte('\n')
		for _, row := range t.Rows {
			mdRow(bw, row, cols)
		}
	}
	for i, n := range t.Notes {
		if i == 0 && cols > 0 {
			bw.WriteByte('\n')
		}
		bw.WriteString("> note: ")
		bw.WriteString(mdEscape(n))
		bw.WriteString("\n")
	}
	return bw.Flush()
}

// mdRow writes one pipe-table row padded to cols cells.
func mdRow(bw *bufio.Writer, cells []string, cols int) {
	bw.WriteByte('|')
	for i := 0; i < cols; i++ {
		bw.WriteByte(' ')
		if i < len(cells) {
			bw.WriteString(mdEscape(cells[i]))
		}
		bw.WriteString(" |")
	}
	bw.WriteByte('\n')
}

// mdEscape neutralizes the characters that would break a pipe table.
var mdEscaper = strings.NewReplacer("|", "\\|", "\n", " ", "\r", "")

func mdEscape(s string) string {
	if !strings.ContainsAny(s, "|\n\r") {
		return s
	}
	return mdEscaper.Replace(s)
}
