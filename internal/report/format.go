package report

import (
	"fmt"
	"strings"
)

// Format selects an output encoding.
type Format int

const (
	// Text is the aligned-columns terminal rendering.
	Text Format = iota
	// CSV is RFC-4180 comma-separated values: header row first, data
	// rows after; titles and notes are omitted.
	CSV
	// Markdown is a GitHub-flavored Markdown pipe table with the title
	// as a heading and notes as a blockquote.
	Markdown
	// JSONLines emits one JSON object per line (a table line, then one
	// line per row and note); ParseJSONLines reads it back.
	JSONLines
)

// String returns the canonical flag spelling of the format.
func (f Format) String() string {
	switch f {
	case Text:
		return "text"
	case CSV:
		return "csv"
	case Markdown:
		return "md"
	case JSONLines:
		return "json"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Formats lists every supported format in flag spelling, for usage
// strings and exhaustive tests.
func Formats() []Format { return []Format{Text, CSV, Markdown, JSONLines} }

// FormatNames is the "text,csv,md,json" list for -format usage strings.
func FormatNames() string {
	names := make([]string, 0, len(Formats()))
	for _, f := range Formats() {
		names = append(names, f.String())
	}
	return strings.Join(names, ",")
}

// ResolveFormat folds a CLI's deprecated -csv boolean into its -format
// value: -csv means "-format csv" unless an explicit -format wins.
func ResolveFormat(format string, csv bool) string {
	if format == "" && csv {
		return "csv"
	}
	return format
}

// ParseFormat maps a flag value to a Format. It accepts the canonical
// spellings plus the common aliases "markdown" and "jsonl".
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "txt", "":
		return Text, nil
	case "csv":
		return CSV, nil
	case "md", "markdown":
		return Markdown, nil
	case "json", "jsonl", "ndjson":
		return JSONLines, nil
	default:
		return Text, fmt.Errorf("report: unknown format %q (want %s)", s, FormatNames())
	}
}
