package report

import (
	"fmt"
	"io"
)

// Renderer writes tables in one output format. Implementations are
// stateless with respect to the destination: the same Renderer may
// write to many writers, and scratch space is reused across calls on
// the same Renderer (a Renderer is not safe for concurrent use).
type Renderer interface {
	// RenderTable writes one table to w.
	RenderTable(w io.Writer, t *Table) error
}

// NewRenderer returns the renderer for a format.
func NewRenderer(f Format) (Renderer, error) {
	switch f {
	case Text:
		return &textRenderer{}, nil
	case CSV:
		return &csvRenderer{}, nil
	case Markdown:
		return &markdownRenderer{}, nil
	case JSONLines:
		return &jsonRenderer{}, nil
	default:
		return nil, fmt.Errorf("report: no renderer for format %v", f)
	}
}
