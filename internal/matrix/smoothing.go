package matrix

import (
	"fmt"
	"math"
)

// LaplacianSmooth returns a new matrix obtained by applying the paper's
// Eq. (25) to every row of p:
//
//	p̂_jk = (p_jk + s) / Σ_u (p_ju + s)
//
// A smaller s preserves more of the original (stronger) correlation; a
// larger s pushes every row toward uniform. s must be positive unless
// every row already has positive mass (s = 0 leaves the matrix unchanged
// up to normalization).
//
// The paper uses this operator to turn a "strongest correlation" matrix
// (a 0/1 permutation-like matrix) into transition matrices of tunable
// correlation degree for the Fig. 6 and Fig. 8 experiments.
func LaplacianSmooth(p *Matrix, s float64) (*Matrix, error) {
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("matrix: smoothing parameter must be finite and non-negative, got %v", s)
	}
	out := p.Clone()
	n := float64(out.Cols())
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		denom := row.Sum() + s*n
		if denom <= 0 {
			return nil, fmt.Errorf("matrix: row %d has zero mass and s=0; cannot smooth", i)
		}
		for j := range row {
			row[j] = (row[j] + s) / denom
		}
	}
	return out, nil
}

// SmoothingSweep applies LaplacianSmooth for each value of s and returns
// the resulting matrices in order. It is a convenience for the
// correlation-strength sweeps in the Fig. 6 and Fig. 8 experiments.
func SmoothingSweep(p *Matrix, ss []float64) ([]*Matrix, error) {
	out := make([]*Matrix, 0, len(ss))
	for _, s := range ss {
		m, err := LaplacianSmooth(p, s)
		if err != nil {
			return nil, fmt.Errorf("matrix: sweep at s=%v: %w", s, err)
		}
		out = append(out, m)
	}
	return out, nil
}
