package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewVectorZero(t *testing.T) {
	v := NewVector(4)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %v, want 0", i, x)
		}
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases the original")
	}
}

func TestVectorSum(t *testing.T) {
	cases := []struct {
		v    Vector
		want float64
	}{
		{Vector{}, 0},
		{Vector{1.5}, 1.5},
		{Vector{1, 2, 3}, 6},
		{Vector{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := c.v.Sum(); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Sum(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorScaleAdd(t *testing.T) {
	v := Vector{1, 2}.Scale(3)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Scale = %v", v)
	}
	v.Add(Vector{1, 1})
	if v[0] != 4 || v[1] != 7 {
		t.Errorf("Add = %v", v)
	}
}

func TestVectorMaxMin(t *testing.T) {
	v := Vector{3, 1, 4, 1, 5}
	if got, at := v.Max(); got != 5 || at != 4 {
		t.Errorf("Max = %v@%d", got, at)
	}
	if got, at := v.Min(); got != 1 || at != 1 {
		t.Errorf("Min = %v@%d, want first minimum", got, at)
	}
}

func TestVectorMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty vector")
		}
	}()
	Vector{}.Max()
}

func TestL1Distance(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{2, 0}
	if got := v.L1Distance(w); got != 3 {
		t.Errorf("L1Distance = %v, want 3", got)
	}
	if got := v.L1Distance(v); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}

func TestIsDistribution(t *testing.T) {
	cases := []struct {
		v    Vector
		want bool
	}{
		{Vector{0.5, 0.5}, true},
		{Vector{1}, true},
		{Vector{0.3, 0.3}, false},
		{Vector{-0.1, 1.1}, false},
		{Vector{math.NaN(), 1}, false},
	}
	for _, c := range cases {
		if got := c.v.IsDistribution(1e-9); got != c.want {
			t.Errorf("IsDistribution(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{2, 2, 4}
	out, err := v.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsDistribution(1e-12) {
		t.Errorf("not a distribution after Normalize: %v", out)
	}
	if !almostEqual(out[2], 0.5, 1e-12) {
		t.Errorf("out[2] = %v, want 0.5", out[2])
	}
}

func TestNormalizeErrors(t *testing.T) {
	for _, v := range []Vector{{0, 0}, {-1, 0.5}, {math.Inf(1)}} {
		if _, err := v.Clone().Normalize(); err == nil && v.Sum() <= 0 {
			t.Errorf("Normalize(%v) should fail", v)
		}
	}
	if _, err := (Vector{0, 0}).Normalize(); err == nil {
		t.Error("Normalize of zero vector should fail")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(4)
	if !u.IsDistribution(1e-12) {
		t.Fatalf("Uniform(4) = %v is not a distribution", u)
	}
	for _, x := range u {
		if !almostEqual(x, 0.25, 1e-12) {
			t.Errorf("Uniform(4) element = %v", x)
		}
	}
	if Uniform(0) != nil {
		t.Error("Uniform(0) should be nil")
	}
}

func TestVectorString(t *testing.T) {
	got := Vector{0.5, 0.25}.String()
	want := "[0.5000 0.2500]"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: normalizing any vector with positive sum yields a
// distribution, and rescaling preserves ratios.
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := make(Vector, 0, len(raw))
		for _, x := range raw {
			v = append(v, math.Abs(math.Mod(x, 100)))
		}
		if v.Sum() <= 0 {
			return true // skip degenerate draws
		}
		w, err := v.Clone().Normalize()
		if err != nil {
			return false
		}
		return w.IsDistribution(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and linear in the first argument.
func TestDotProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		v, w := NewVector(n), NewVector(n)
		for i := 0; i < n; i++ {
			v[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		if !almostEqual(v.Dot(w), w.Dot(v), 1e-9) {
			t.Fatalf("Dot not symmetric: %v vs %v", v.Dot(w), w.Dot(v))
		}
		k := rng.NormFloat64()
		scaled := v.Clone().Scale(k)
		if !almostEqual(scaled.Dot(w), k*v.Dot(w), 1e-6*(1+math.Abs(k*v.Dot(w)))) {
			t.Fatalf("Dot not linear under scaling")
		}
	}
}
