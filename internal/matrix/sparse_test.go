package matrix

import (
	"reflect"
	"testing"
)

func TestSparsify(t *testing.T) {
	s := Sparsify(Vector{0, 0.25, 0, 0.75, 0})
	if !reflect.DeepEqual(s.Index, []int{1, 3}) {
		t.Errorf("Index = %v", s.Index)
	}
	if !reflect.DeepEqual(s.Value, []float64{0.25, 0.75}) {
		t.Errorf("Value = %v", s.Value)
	}
	if s.Sum != 1 || s.NNZ() != 2 {
		t.Errorf("Sum = %v, NNZ = %d", s.Sum, s.NNZ())
	}
	empty := Sparsify(Vector{0, 0, 0})
	if empty.NNZ() != 0 || empty.Sum != 0 {
		t.Errorf("empty row: %+v", empty)
	}
}

func TestSparsifySumMatchesDenseOrder(t *testing.T) {
	// The Sum must be the exact index-order accumulation a dense scan
	// produces — the engine relies on reproducing the naive arithmetic.
	v := Vector{0.1, 0.7, 0, 0.2, 1e-17}
	dense := 0.0
	for _, x := range v {
		dense += x
	}
	if got := Sparsify(v).Sum; got != dense {
		t.Errorf("Sum = %v, dense accumulation %v", got, dense)
	}
}

func TestMatrixSparseRow(t *testing.T) {
	m := MustFromRows([][]float64{{0.5, 0, 0.5}, {0, 1, 0}})
	s := m.SparseRow(1)
	if !reflect.DeepEqual(s.Index, []int{1}) || s.Value[0] != 1 {
		t.Errorf("SparseRow(1) = %+v", s)
	}
	if first := m.SparseRow(0); !reflect.DeepEqual(first.Index, []int{0, 2}) {
		t.Errorf("SparseRow(0) = %+v", first)
	}
}
