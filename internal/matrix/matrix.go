package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero matrix with the given shape. It panics if either
// dimension is non-positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal,
// non-zero length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, ErrEmpty
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// MustFromRows is FromRows but panics on error. Intended for literals in
// tests and examples.
func MustFromRows(rows [][]float64) *Matrix {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a Vector sharing the matrix's storage. Mutating
// the returned vector mutates the matrix.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return Vector(m.data[i*m.cols : (i+1)*m.cols])
}

// Col returns column j as a freshly allocated Vector.
func (m *Matrix) Col(j int) Vector {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.cols))
	}
	v := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		v[i] = m.data[i*m.cols+j]
	}
	return v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.data[i*out.cols+j] += a * other.data[k*other.cols+j]
			}
		}
	}
	return out, nil
}

// VecMul returns v * m (a row vector times the matrix).
func (m *Matrix) VecMul(v Vector) (Vector, error) {
	if len(v) != m.rows {
		return nil, fmt.Errorf("matrix: cannot multiply row vector of length %d by %dx%d", len(v), m.rows, m.cols)
	}
	out := NewVector(m.cols)
	for i, a := range v {
		if a == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, b := range row {
			out[j] += a * b
		}
	}
	return out, nil
}

// MulVec returns m * v (the matrix times a column vector).
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by column vector of length %d", m.rows, m.cols, len(v))
	}
	out := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Vector(m.data[i*m.cols : (i+1)*m.cols]).Dot(v)
	}
	return out, nil
}

// Equal reports whether m and other have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, x := range m.data {
		if math.Abs(x-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// m and other. It returns +Inf for shape mismatches.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.rows != other.rows || m.cols != other.cols {
		return math.Inf(1)
	}
	worst := 0.0
	for i, x := range m.data {
		if d := math.Abs(x - other.data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// String renders the matrix with 4 decimal places, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(m.Row(i).String())
	}
	return b.String()
}

// IsRowStochastic reports whether every element of m is in [0,1] (up to
// tol) and every row sums to 1 (up to tol). Transition matrices in the
// paper (Definition 3) are row-stochastic.
func (m *Matrix) IsRowStochastic(tol float64) bool {
	for i := 0; i < m.rows; i++ {
		if !m.Row(i).IsDistribution(tol) {
			return false
		}
	}
	return true
}

// NormalizeRows rescales every row to sum to 1 in place. It returns an
// error naming the first row whose sum is non-positive or non-finite.
func (m *Matrix) NormalizeRows() error {
	for i := 0; i < m.rows; i++ {
		if _, err := m.Row(i).Normalize(); err != nil {
			return fmt.Errorf("matrix: row %d: %w", i, err)
		}
	}
	return nil
}
