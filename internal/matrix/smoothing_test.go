package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestLaplacianSmoothKeepsStochastic(t *testing.T) {
	p := MustFromRows([][]float64{{1, 0}, {0, 1}})
	for _, s := range []float64{0, 0.001, 0.05, 1, 100} {
		out, err := LaplacianSmooth(p, s)
		if err != nil {
			t.Fatalf("s=%v: %v", s, err)
		}
		if !out.IsRowStochastic(1e-12) {
			t.Errorf("s=%v: result not row-stochastic:\n%v", s, out)
		}
	}
}

func TestLaplacianSmoothZeroIsIdentityOp(t *testing.T) {
	p := MustFromRows([][]float64{{0.3, 0.7}, {0.9, 0.1}})
	out, err := LaplacianSmooth(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(p, 1e-12) {
		t.Errorf("s=0 changed a stochastic matrix:\n%v", out)
	}
}

func TestLaplacianSmoothExactValue(t *testing.T) {
	// For a point-mass row (1,0) with s: (1+s)/(1+2s), s/(1+2s).
	p := MustFromRows([][]float64{{1, 0}})
	out, err := LaplacianSmooth(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out.At(0, 0), 1.5/2.0, 1e-12) || !almostEqual(out.At(0, 1), 0.5/2.0, 1e-12) {
		t.Errorf("got %v", out)
	}
}

func TestLaplacianSmoothLargeSTendsUniform(t *testing.T) {
	p := MustFromRows([][]float64{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}})
	out, err := LaplacianSmooth(p, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(out.At(i, j), 1.0/3, 1e-4) {
				t.Errorf("(%d,%d) = %v, want ~1/3", i, j, out.At(i, j))
			}
		}
	}
}

func TestLaplacianSmoothMonotoneTowardUniform(t *testing.T) {
	// Larger s should strictly shrink the distance to uniform for a
	// point-mass row.
	p := MustFromRows([][]float64{{1, 0, 0, 0}})
	u := Uniform(4)
	prev := math.Inf(1)
	for _, s := range []float64{0.001, 0.01, 0.1, 1, 10} {
		out, err := LaplacianSmooth(p, s)
		if err != nil {
			t.Fatal(err)
		}
		d := out.Row(0).L1Distance(u)
		if d >= prev {
			t.Errorf("s=%v: distance %v not smaller than %v", s, d, prev)
		}
		prev = d
	}
}

func TestLaplacianSmoothErrors(t *testing.T) {
	p := MustFromRows([][]float64{{1, 0}})
	if _, err := LaplacianSmooth(p, -1); err == nil {
		t.Error("negative s should fail")
	}
	if _, err := LaplacianSmooth(p, math.NaN()); err == nil {
		t.Error("NaN s should fail")
	}
	zero := MustFromRows([][]float64{{0, 0}})
	if _, err := LaplacianSmooth(zero, 0); err == nil {
		t.Error("zero-mass row with s=0 should fail")
	}
}

func TestSmoothingSweep(t *testing.T) {
	p := MustFromRows([][]float64{{1, 0}, {0, 1}})
	ms, err := SmoothingSweep(p, []float64{0.01, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d matrices", len(ms))
	}
	for _, m := range ms {
		if !m.IsRowStochastic(1e-12) {
			t.Error("sweep result not stochastic")
		}
	}
	if _, err := SmoothingSweep(p, []float64{0.1, -1}); err == nil {
		t.Error("sweep with invalid s should fail")
	}
}

func TestLaplacianSmoothDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := New(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			p.Set(i, j, rng.Float64())
		}
	}
	if err := p.NormalizeRows(); err != nil {
		t.Fatal(err)
	}
	before := p.Clone()
	if _, err := LaplacianSmooth(p, 0.3); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(before, 0) {
		t.Error("LaplacianSmooth mutated its input")
	}
}
