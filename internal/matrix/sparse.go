package matrix

// SparseRow is a compressed view of one matrix row: the indices and
// values of its non-zero entries plus the full-row sum. Road-network
// transition matrices — the paper's Fig. 1 setting — have a handful of
// reachable successors per state, so algorithms that only care about
// positive mass (candidate-set construction in the leakage LFP, support
// walks) scan len(Index) entries instead of the full dimension.
type SparseRow struct {
	// Index holds the positions of the non-zero entries, increasing.
	Index []int
	// Value holds the entries at the corresponding positions.
	Value []float64
	// Sum is the sum over the whole row (zeros included, so it is the
	// exact same accumulation a dense scan in index order produces).
	Sum float64
}

// NNZ returns the number of non-zero entries.
func (s SparseRow) NNZ() int { return len(s.Index) }

// Sparsify compresses a dense vector into its non-zero support. The
// returned SparseRow does not alias v.
func Sparsify(v Vector) SparseRow {
	s := SparseRow{}
	for j, x := range v {
		s.Sum += x
		if x != 0 {
			s.Index = append(s.Index, j)
			s.Value = append(s.Value, x)
		}
	}
	return s
}

// SparseRow returns row i compressed to its non-zero support.
func (m *Matrix) SparseRow(i int) SparseRow {
	return Sparsify(m.Row(i))
}
