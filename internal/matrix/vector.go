// Package matrix provides the small dense linear-algebra substrate used
// throughout the reproduction: vectors, dense row-major matrices,
// row-stochastic (probability) matrices, and the Laplacian smoothing
// operator of Eq. (25) in the paper, which generates transition matrices
// of tunable correlation strength.
//
// Everything here is deliberately simple and allocation-conscious: the
// privacy-quantification algorithms call into this package in tight
// loops over row pairs of transition matrices.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Vector is a dense vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Sum returns the sum of all elements.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Dot returns the inner product of v and w.
// It panics if the lengths differ, since that is always a programming error.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Scale multiplies every element by k in place and returns v.
func (v Vector) Scale(k float64) Vector {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Add adds w to v element-wise in place and returns v.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: Add length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Max returns the maximum element and its index. It panics on an empty
// vector.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		panic("matrix: Max of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, at = x, i+1
		}
	}
	return best, at
}

// Min returns the minimum element and its index. It panics on an empty
// vector.
func (v Vector) Min() (float64, int) {
	if len(v) == 0 {
		panic("matrix: Min of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v[1:] {
		if x < best {
			best, at = x, i+1
		}
	}
	return best, at
}

// L1Distance returns the L1 norm of v-w.
func (v Vector) L1Distance(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: L1Distance length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += math.Abs(x - w[i])
	}
	return s
}

// IsDistribution reports whether v is a probability distribution: all
// elements within [0,1] (up to tol) and summing to 1 (up to tol).
func (v Vector) IsDistribution(tol float64) bool {
	for _, x := range v {
		if x < -tol || x > 1+tol || math.IsNaN(x) {
			return false
		}
	}
	return math.Abs(v.Sum()-1) <= tol
}

// Normalize rescales v in place so it sums to 1 and returns v. It
// returns an error if the sum is zero, negative, or not finite.
func (v Vector) Normalize() (Vector, error) {
	s := v.Sum()
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("matrix: cannot normalize vector with sum %v", s)
	}
	for i := range v {
		v[i] /= s
	}
	return v, nil
}

// String formats the vector with 4 decimal places.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4f", x)
	}
	b.WriteByte(']')
	return b.String()
}

// ErrEmpty is returned when an operation receives an empty vector or
// matrix where a non-empty one is required.
var ErrEmpty = errors.New("matrix: empty operand")

// Uniform returns the uniform distribution over n outcomes.
func Uniform(n int) Vector {
	if n <= 0 {
		return nil
	}
	v := NewVector(n)
	p := 1.0 / float64(n)
	for i := range v {
		v[i] = p
	}
	return v
}
