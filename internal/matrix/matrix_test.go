package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewShape(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid shape")
		}
	}()
	New(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged input should fail")
	}
}

func TestMustFromRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFromRows([][]float64{{1}, {2, 3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
	if !m.IsRowStochastic(0) {
		t.Error("identity should be row-stochastic")
	}
}

func TestSetAtBounds(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 {
		t.Errorf("At(1,1) = %v", m.At(1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic out of range")
		}
	}()
	m.At(2, 0)
}

func TestRowSharesStorage(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 9
	if m.At(0, 0) != 9 {
		t.Error("Row should share storage")
	}
}

func TestColCopies(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Col(1) = %v", c)
	}
	c[0] = 9
	if m.At(0, 1) != 2 {
		t.Error("Col should copy")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestTranspose(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("shape = %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("transpose wrong: %v", tr)
	}
	back := tr.Transpose()
	if !back.Equal(m, 0) {
		t.Error("double transpose != original")
	}
}

func TestMul(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{0, 1}, {1, 0}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromRows([][]float64{{2, 1}, {4, 3}})
	if !p.Equal(want, 1e-12) {
		t.Errorf("Mul = %v", p)
	}
	if _, err := a.Mul(MustFromRows([][]float64{{1, 2, 3}})); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, rng.Float64())
		}
	}
	p, err := a.Mul(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(a, 1e-12) {
		t.Error("A*I != A")
	}
}

func TestVecMulAndMulVec(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	row, err := m.VecMul(Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 4 || row[1] != 6 {
		t.Errorf("VecMul = %v", row)
	}
	col, err := m.MulVec(Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 3 || col[1] != 7 {
		t.Errorf("MulVec = %v", col)
	}
	if _, err := m.VecMul(Vector{1}); err == nil {
		t.Error("VecMul length mismatch should fail")
	}
	if _, err := m.MulVec(Vector{1, 2, 3}); err == nil {
		t.Error("MulVec length mismatch should fail")
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}})
	b := MustFromRows([][]float64{{1, 2.001}})
	if a.Equal(b, 1e-6) {
		t.Error("should differ at tol 1e-6")
	}
	if !a.Equal(b, 0.01) {
		t.Error("should be equal at tol 0.01")
	}
	if d := a.MaxAbsDiff(b); !almostEqual(d, 0.001, 1e-12) {
		t.Errorf("MaxAbsDiff = %v", d)
	}
	c := MustFromRows([][]float64{{1, 2}, {3, 4}})
	if !math.IsInf(a.MaxAbsDiff(c), 1) {
		t.Error("shape mismatch should give +Inf")
	}
}

func TestIsRowStochastic(t *testing.T) {
	good := MustFromRows([][]float64{{0.5, 0.5}, {0, 1}})
	if !good.IsRowStochastic(1e-9) {
		t.Error("good matrix rejected")
	}
	bad := MustFromRows([][]float64{{0.5, 0.6}, {0, 1}})
	if bad.IsRowStochastic(1e-9) {
		t.Error("bad row sum accepted")
	}
	neg := MustFromRows([][]float64{{-0.5, 1.5}})
	if neg.IsRowStochastic(1e-9) {
		t.Error("negative entry accepted")
	}
}

func TestNormalizeRows(t *testing.T) {
	m := MustFromRows([][]float64{{2, 2}, {1, 3}})
	if err := m.NormalizeRows(); err != nil {
		t.Fatal(err)
	}
	if !m.IsRowStochastic(1e-12) {
		t.Errorf("not stochastic after NormalizeRows: %v", m)
	}
	zero := MustFromRows([][]float64{{0, 0}})
	if err := zero.NormalizeRows(); err == nil {
		t.Error("zero row should fail")
	}
}

func TestMatrixString(t *testing.T) {
	m := MustFromRows([][]float64{{1, 0}, {0, 1}})
	want := "[1.0000 0.0000]\n[0.0000 1.0000]"
	if got := m.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: (A*B)*v == A*(B*v) for random small matrices.
func TestMulAssociatesWithVec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		a, b := New(n, n), New(n, n)
		v := NewVector(n)
		for i := 0; i < n; i++ {
			v[i] = rng.NormFloat64()
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
				b.Set(i, j, rng.NormFloat64())
			}
		}
		ab, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		left, err := ab.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := b.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		right, err := a.MulVec(bv)
		if err != nil {
			t.Fatal(err)
		}
		if left.L1Distance(right) > 1e-8 {
			t.Fatalf("associativity violated by %v", left.L1Distance(right))
		}
	}
}
