package trace

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/markov"
	"repro/internal/matrix"
)

func mixedChains(t *testing.T) []*markov.Chain {
	t.Helper()
	sticky, err := markov.Lazy(3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	roamer, err := markov.Lazy(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return []*markov.Chain{sticky, roamer}
}

func TestNewMixedPopulationValidation(t *testing.T) {
	chains := mixedChains(t)
	uni := matrix.Uniform(3)
	if _, err := NewMixedPopulation(nil, []int{0}, uni, nil); err == nil {
		t.Error("no chains should fail")
	}
	if _, err := NewMixedPopulation(chains, nil, uni, nil); err == nil {
		t.Error("no users should fail")
	}
	if _, err := NewMixedPopulation(chains, []int{0, 5}, uni, nil); err == nil {
		t.Error("bad assignment should fail")
	}
	if _, err := NewMixedPopulation(chains, []int{0}, matrix.Uniform(2), nil); err == nil {
		t.Error("initial length mismatch should fail")
	}
	two, err := markov.Lazy(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMixedPopulation([]*markov.Chain{chains[0], two}, []int{0}, uni, nil); err == nil {
		t.Error("domain mismatch should fail")
	}
	if _, err := NewMixedPopulation([]*markov.Chain{nil}, []int{0}, uni, nil); err == nil {
		t.Error("nil chain should fail")
	}
}

func TestMixedPopulationProfiles(t *testing.T) {
	chains := mixedChains(t)
	mp, err := NewMixedPopulation(chains, []int{0, 1, 0}, matrix.Uniform(3), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if mp.Users() != 3 {
		t.Errorf("Users = %d", mp.Users())
	}
	p, err := mp.Profile(1)
	if err != nil || p != 1 {
		t.Errorf("Profile(1) = %d/%v", p, err)
	}
	c, err := mp.Chain(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(0, 0) != 0.95 {
		t.Errorf("user 0 chain stay prob = %v", c.Prob(0, 0))
	}
	if _, err := mp.Profile(9); err == nil {
		t.Error("bad user should fail")
	}
	if _, err := mp.Chain(-1); err == nil {
		t.Error("bad user should fail")
	}
}

func TestMixedPopulationBehaviorDiffersByProfile(t *testing.T) {
	// Sticky users move rarely; roamers move often. Measure move rates.
	chains := mixedChains(t)
	const half = 200
	assignment := make([]int, 2*half)
	for u := half; u < 2*half; u++ {
		assignment[u] = 1
	}
	mp, err := NewMixedPopulation(chains, assignment, matrix.Uniform(3), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	moves := make([]int, 2)
	const steps = 50
	prev := mp.Locations()
	for s := 0; s < steps; s++ {
		mp.Advance()
		cur := mp.Locations()
		for u := range cur {
			if cur[u] != prev[u] {
				moves[assignment[u]]++
			}
		}
		prev = cur
	}
	stickyRate := float64(moves[0]) / (half * steps)
	roamRate := float64(moves[1]) / (half * steps)
	if math.Abs(stickyRate-0.05) > 0.02 {
		t.Errorf("sticky move rate = %v, want ~0.05", stickyRate)
	}
	if math.Abs(roamRate-0.9) > 0.05 {
		t.Errorf("roamer move rate = %v, want ~0.9", roamRate)
	}
}

func TestMixedPopulationRunCounts(t *testing.T) {
	chains := mixedChains(t)
	mp, err := NewMixedPopulation(chains, []int{0, 1, 1, 0, 1}, matrix.Uniform(3), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	locs, counts, err := mp.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 6 || len(counts) != 6 {
		t.Fatal("wrong horizon")
	}
	for tm := range counts {
		total := 0
		for _, c := range counts[tm] {
			total += c
		}
		if total != 5 {
			t.Errorf("t=%d: total %d", tm, total)
		}
	}
	if _, _, err := mp.Run(0); err == nil {
		t.Error("T=0 should fail")
	}
}
