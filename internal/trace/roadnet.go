// Package trace builds the location-data world of the paper's Example 1
// and Fig. 1: a road network over locations, a population of users whose
// mobility follows Markov chains derived from the network, and the
// true/private count aggregation pipeline. The paper evaluates on
// synthetic correlations; this package provides the realistic scenario
// its introduction motivates, for the examples and integration tests.
package trace

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/markov"
	"repro/internal/matrix"
)

// RoadNetwork is a directed graph over locations: an edge u->v means a
// user at u can be at v at the next time step. Self-loops are allowed
// (staying in place).
type RoadNetwork struct {
	n   int
	adj [][]int // adjacency lists, deduplicated and sorted by insertion
}

// NewRoadNetwork creates an empty network over n locations.
func NewRoadNetwork(n int) (*RoadNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: need at least one location, got %d", n)
	}
	return &RoadNetwork{n: n, adj: make([][]int, n)}, nil
}

// N returns the number of locations.
func (r *RoadNetwork) N() int { return r.n }

// AddEdge adds the directed edge u -> v. Duplicate edges are ignored.
func (r *RoadNetwork) AddEdge(u, v int) error {
	if u < 0 || u >= r.n || v < 0 || v >= r.n {
		return fmt.Errorf("trace: edge (%d,%d) outside [0,%d)", u, v, r.n)
	}
	for _, w := range r.adj[u] {
		if w == v {
			return nil
		}
	}
	r.adj[u] = append(r.adj[u], v)
	return nil
}

// Out returns a copy of u's out-neighbors.
func (r *RoadNetwork) Out(u int) []int { return append([]int(nil), r.adj[u]...) }

// ErrDeadEnd is returned by UniformChain when some location has no
// outgoing edge, which would make the mobility model ill-defined.
var ErrDeadEnd = errors.New("trace: road network has a location with no outgoing edge")

// UniformChain derives the forward temporal correlation P^F implied by
// the network under uniform routing: from each location a user moves to
// each out-neighbor with equal probability. This is the way an adversary
// turns public road-network knowledge into a transition matrix
// (Example 1: "always arriving at loc5 after visiting loc4" becomes
// Pr(l_t = loc5 | l_{t-1} = loc4) = 1).
func (r *RoadNetwork) UniformChain() (*markov.Chain, error) {
	m := matrix.New(r.n, r.n)
	for u := 0; u < r.n; u++ {
		if len(r.adj[u]) == 0 {
			return nil, fmt.Errorf("%w: location %d", ErrDeadEnd, u)
		}
		p := 1.0 / float64(len(r.adj[u]))
		for _, v := range r.adj[u] {
			m.Set(u, v, p)
		}
	}
	return markov.New(m)
}

// WeightedChain derives P^F with explicit edge weights: weights[u][v] is
// the propensity of moving from u to v; rows are normalized. Missing
// edges must have weight zero.
func (r *RoadNetwork) WeightedChain(weights [][]float64) (*markov.Chain, error) {
	if len(weights) != r.n {
		return nil, fmt.Errorf("trace: %d weight rows for %d locations", len(weights), r.n)
	}
	m := matrix.New(r.n, r.n)
	for u := 0; u < r.n; u++ {
		if len(weights[u]) != r.n {
			return nil, fmt.Errorf("trace: weight row %d has %d entries for %d locations", u, len(weights[u]), r.n)
		}
		allowed := make(map[int]bool, len(r.adj[u]))
		for _, v := range r.adj[u] {
			allowed[v] = true
		}
		for v, w := range weights[u] {
			if w < 0 {
				return nil, fmt.Errorf("trace: negative weight at (%d,%d)", u, v)
			}
			if w > 0 && !allowed[v] {
				return nil, fmt.Errorf("trace: weight on missing edge (%d,%d)", u, v)
			}
			m.Set(u, v, w)
		}
	}
	if err := m.NormalizeRows(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	return markov.New(m)
}

// Fig1Network returns the 5-location road network sketched in Fig. 1(b):
// loc4 feeds loc5 deterministically ("always arriving at loc5 after
// visiting loc4"), while the remaining locations form a connected
// neighborhood. Location indices are 0-based (loc1 = 0 ... loc5 = 4).
func Fig1Network() *RoadNetwork {
	r, err := NewRoadNetwork(5)
	if err != nil {
		panic(err)
	}
	edges := [][2]int{
		{0, 0}, {0, 1}, {0, 2}, // loc1 <-> loc2, loc3
		{1, 0}, {1, 1}, {1, 3}, // loc2 -> loc1, loc4
		{2, 0}, {2, 2}, {2, 4}, // loc3 -> loc1, loc5
		{3, 4},                 // loc4 -> loc5 only (the deterministic road)
		{4, 2}, {4, 3}, {4, 4}, // loc5 -> loc3, loc4
	}
	for _, e := range edges {
		if err := r.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return r
}

// Population simulates users walking the network. Each user follows the
// same forward chain; initial locations are drawn from initial.
type Population struct {
	chain   *markov.Chain
	current []int
	rng     *rand.Rand
}

// NewPopulation places users users according to initial and prepares the
// simulation. rng may be nil for a deterministic default.
func NewPopulation(chain *markov.Chain, users int, initial matrix.Vector, rng *rand.Rand) (*Population, error) {
	if chain == nil {
		return nil, errors.New("trace: nil chain")
	}
	if users <= 0 {
		return nil, fmt.Errorf("trace: need at least one user, got %d", users)
	}
	if len(initial) != chain.N() {
		return nil, fmt.Errorf("trace: initial distribution length %d for %d locations", len(initial), chain.N())
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	p := &Population{chain: chain, current: make([]int, users), rng: rng}
	for i := range p.current {
		p.current[i] = markov.Sample(rng, initial)
	}
	return p, nil
}

// Users returns the population size.
func (p *Population) Users() int { return len(p.current) }

// Locations returns a copy of every user's current location — one column
// of Fig. 1(a).
func (p *Population) Locations() []int { return append([]int(nil), p.current...) }

// Counts returns the current per-location counts — one column of
// Fig. 1(c).
func (p *Population) Counts() []int {
	counts := make([]int, p.chain.N())
	for _, l := range p.current {
		counts[l]++
	}
	return counts
}

// Advance moves every user one step along the chain.
func (p *Population) Advance() {
	for i, l := range p.current {
		p.current[i] = p.chain.Step(p.rng, l)
	}
}

// Run simulates T time steps (including the initial placement as t=1)
// and returns the per-step location columns and count histograms.
func (p *Population) Run(T int) (locations [][]int, counts [][]int, err error) {
	if T <= 0 {
		return nil, nil, fmt.Errorf("trace: need at least one step, got %d", T)
	}
	locations = make([][]int, T)
	counts = make([][]int, T)
	for t := 0; t < T; t++ {
		if t > 0 {
			p.Advance()
		}
		locations[t] = p.Locations()
		counts[t] = p.Counts()
	}
	return locations, counts, nil
}
