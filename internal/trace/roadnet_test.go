package trace

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestNewRoadNetwork(t *testing.T) {
	if _, err := NewRoadNetwork(0); err == nil {
		t.Error("n=0 should fail")
	}
	r, err := NewRoadNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 3 {
		t.Errorf("N = %d", r.N())
	}
}

func TestAddEdgeAndOut(t *testing.T) {
	r, _ := NewRoadNetwork(3)
	if err := r.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.AddEdge(0, 1); err != nil {
		t.Fatal(err) // duplicate ignored
	}
	if err := r.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	out := r.Out(0)
	if len(out) != 2 {
		t.Errorf("Out(0) = %v", out)
	}
	if err := r.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge should fail")
	}
	// Out returns a copy.
	out[0] = 99
	if r.Out(0)[0] == 99 {
		t.Error("Out exposes internal state")
	}
}

func TestUniformChain(t *testing.T) {
	r, _ := NewRoadNetwork(2)
	if err := r.AddEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.UniformChain(); !errors.Is(err, ErrDeadEnd) {
		t.Errorf("dead end at node 1: err = %v", err)
	}
	if err := r.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	c, err := r.UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Prob(0, 0)-0.5) > 1e-12 || math.Abs(c.Prob(0, 1)-0.5) > 1e-12 {
		t.Errorf("row 0 = %v", c.Row(0))
	}
	if c.Prob(1, 0) != 1 {
		t.Errorf("row 1 = %v", c.Row(1))
	}
}

func TestWeightedChain(t *testing.T) {
	r, _ := NewRoadNetwork(2)
	_ = r.AddEdge(0, 0)
	_ = r.AddEdge(0, 1)
	_ = r.AddEdge(1, 1)
	c, err := r.WeightedChain([][]float64{{3, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Prob(0, 0)-0.75) > 1e-12 {
		t.Errorf("Prob(0,0) = %v", c.Prob(0, 0))
	}
	if c.Prob(1, 1) != 1 {
		t.Errorf("Prob(1,1) = %v", c.Prob(1, 1))
	}
	if _, err := r.WeightedChain([][]float64{{1, 1}}); err == nil {
		t.Error("row count mismatch should fail")
	}
	if _, err := r.WeightedChain([][]float64{{1}, {1, 1}}); err == nil {
		t.Error("short row should fail")
	}
	if _, err := r.WeightedChain([][]float64{{1, -1}, {0, 1}}); err == nil {
		t.Error("negative weight should fail")
	}
	r2, _ := NewRoadNetwork(2)
	_ = r2.AddEdge(0, 0)
	_ = r2.AddEdge(1, 1)
	if _, err := r2.WeightedChain([][]float64{{1, 1}, {0, 1}}); err == nil {
		t.Error("weight on missing edge should fail")
	}
}

func TestFig1Network(t *testing.T) {
	r := Fig1Network()
	if r.N() != 5 {
		t.Fatalf("N = %d", r.N())
	}
	// The defining property of Example 1: loc4 (index 3) goes only to
	// loc5 (index 4).
	out := r.Out(3)
	if len(out) != 1 || out[0] != 4 {
		t.Errorf("Out(loc4) = %v, want [loc5]", out)
	}
	c, err := r.UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(3, 4) != 1 {
		t.Errorf("Pr(l_t = loc5 | l_{t-1} = loc4) = %v, want 1", c.Prob(3, 4))
	}
}

func TestPopulationValidation(t *testing.T) {
	c, err := Fig1Network().UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPopulation(nil, 5, matrix.Uniform(5), nil); err == nil {
		t.Error("nil chain should fail")
	}
	if _, err := NewPopulation(c, 0, matrix.Uniform(5), nil); err == nil {
		t.Error("0 users should fail")
	}
	if _, err := NewPopulation(c, 5, matrix.Uniform(3), nil); err == nil {
		t.Error("bad initial length should fail")
	}
}

func TestPopulationCountsConsistent(t *testing.T) {
	c, err := Fig1Network().UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPopulation(c, 100, matrix.Uniform(5), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		counts := p.Counts()
		total := 0
		for _, v := range counts {
			total += v
		}
		if total != 100 {
			t.Fatalf("step %d: counts sum to %d", step, total)
		}
		locs := p.Locations()
		recount := make([]int, 5)
		for _, l := range locs {
			recount[l]++
		}
		for i := range counts {
			if counts[i] != recount[i] {
				t.Fatalf("step %d: counts disagree with locations", step)
			}
		}
		p.Advance()
	}
}

func TestPopulationRespectsNetwork(t *testing.T) {
	// Every transition must follow an edge.
	net := Fig1Network()
	c, err := net.UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPopulation(c, 50, matrix.Uniform(5), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	prev := p.Locations()
	for step := 0; step < 20; step++ {
		p.Advance()
		cur := p.Locations()
		for u := range cur {
			ok := false
			for _, v := range net.Out(prev[u]) {
				if v == cur[u] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("user %d moved %d -> %d without an edge", u, prev[u], cur[u])
			}
		}
		prev = cur
	}
}

func TestPopulationRun(t *testing.T) {
	c, err := Fig1Network().UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPopulation(c, 10, matrix.Uniform(5), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	locs, counts, err := p.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 7 || len(counts) != 7 {
		t.Fatalf("lengths %d/%d", len(locs), len(counts))
	}
	for tm := range counts {
		total := 0
		for _, v := range counts[tm] {
			total += v
		}
		if total != 10 {
			t.Errorf("t=%d: total %d", tm, total)
		}
	}
	if _, _, err := p.Run(0); err == nil {
		t.Error("T=0 should fail")
	}
}

func TestFig1DeterministicRoadLeaks(t *testing.T) {
	// Everyone at loc4 must be at loc5 next step: the count of loc5 at
	// t+1 is at least the count of loc4 at t (the inference of Example 1).
	c, err := Fig1Network().UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPopulation(c, 200, matrix.Uniform(5), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	_, counts, err := p.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	for tm := 0; tm+1 < len(counts); tm++ {
		if counts[tm+1][4] < counts[tm][3] {
			t.Errorf("t=%d: loc5 count %d < prior loc4 count %d", tm, counts[tm+1][4], counts[tm][3])
		}
	}
}
