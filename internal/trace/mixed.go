package trace

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/markov"
	"repro/internal/matrix"
)

// MixedPopulation simulates users with heterogeneous mobility: each user
// follows their own Markov chain. This matches the paper's per-user
// adversary model (P^B_i, P^F_i differ per user i) more faithfully than
// the shared-chain Population, and feeds the stream server's per-user
// accountant registry in tests and examples.
type MixedPopulation struct {
	chains  []*markov.Chain // per profile
	profile []int           // user -> profile index
	current []int
	rng     *rand.Rand
	domain  int
}

// NewMixedPopulation builds a population where user u follows
// chains[assignment[u]]. All chains must share one domain size. Initial
// locations are drawn from initial. rng may be nil for a deterministic
// default.
func NewMixedPopulation(chains []*markov.Chain, assignment []int, initial matrix.Vector, rng *rand.Rand) (*MixedPopulation, error) {
	if len(chains) == 0 {
		return nil, errors.New("trace: need at least one chain")
	}
	if len(assignment) == 0 {
		return nil, errors.New("trace: need at least one user")
	}
	for i, c := range chains {
		if c == nil {
			return nil, fmt.Errorf("trace: chain %d is nil", i)
		}
	}
	domain := chains[0].N()
	for i, c := range chains {
		if c.N() != domain {
			return nil, fmt.Errorf("trace: chain %d has %d states, chain 0 has %d", i, c.N(), domain)
		}
	}
	for u, p := range assignment {
		if p < 0 || p >= len(chains) {
			return nil, fmt.Errorf("trace: user %d assigned to profile %d, outside [0,%d)", u, p, len(chains))
		}
	}
	if len(initial) != domain {
		return nil, fmt.Errorf("trace: initial distribution length %d for %d locations", len(initial), domain)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	mp := &MixedPopulation{
		chains:  chains,
		profile: append([]int(nil), assignment...),
		current: make([]int, len(assignment)),
		rng:     rng,
		domain:  domain,
	}
	for u := range mp.current {
		mp.current[u] = markov.Sample(rng, initial)
	}
	return mp, nil
}

// Users returns the population size.
func (m *MixedPopulation) Users() int { return len(m.current) }

// Profile returns user u's profile index.
func (m *MixedPopulation) Profile(u int) (int, error) {
	if u < 0 || u >= len(m.profile) {
		return 0, fmt.Errorf("trace: user %d outside [0,%d)", u, len(m.profile))
	}
	return m.profile[u], nil
}

// Chain returns the chain of user u — what the adversary targeting u
// would use as forward correlation.
func (m *MixedPopulation) Chain(u int) (*markov.Chain, error) {
	p, err := m.Profile(u)
	if err != nil {
		return nil, err
	}
	return m.chains[p], nil
}

// Locations returns a copy of every user's current location.
func (m *MixedPopulation) Locations() []int { return append([]int(nil), m.current...) }

// Counts returns the current per-location counts.
func (m *MixedPopulation) Counts() []int {
	counts := make([]int, m.domain)
	for _, l := range m.current {
		counts[l]++
	}
	return counts
}

// Advance moves every user one step along their own chain.
func (m *MixedPopulation) Advance() {
	for u, l := range m.current {
		m.current[u] = m.chains[m.profile[u]].Step(m.rng, l)
	}
}

// Run simulates T time steps (the initial placement is t=1) and returns
// per-step location columns and count histograms.
func (m *MixedPopulation) Run(T int) (locations [][]int, counts [][]int, err error) {
	if T <= 0 {
		return nil, nil, fmt.Errorf("trace: need at least one step, got %d", T)
	}
	locations = make([][]int, T)
	counts = make([][]int, T)
	for t := 0; t < T; t++ {
		if t > 0 {
			m.Advance()
		}
		locations[t] = m.Locations()
		counts[t] = m.Counts()
	}
	return locations, counts, nil
}
