package markov

import (
	"encoding/json"
	"fmt"

	"repro/internal/matrix"
)

// chainJSON is the wire format of a Chain: the transition rows plus
// optional state labels.
type chainJSON struct {
	Rows   [][]float64 `json:"rows"`
	Labels []string    `json:"labels,omitempty"`
}

// MarshalJSON encodes the chain as {"rows": [[...], ...], "labels": [...]}.
func (c *Chain) MarshalJSON() ([]byte, error) {
	n := c.N()
	out := chainJSON{Rows: make([][]float64, n)}
	for i := 0; i < n; i++ {
		out.Rows[i] = c.Row(i)
	}
	if c.labels != nil {
		out.Labels = append([]string(nil), c.labels...)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a chain (rows must be square and
// row-stochastic; label count, when present, must match).
func (c *Chain) UnmarshalJSON(data []byte) error {
	var in chainJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("markov: decoding chain: %w", err)
	}
	m, err := matrix.FromRows(in.Rows)
	if err != nil {
		return fmt.Errorf("markov: decoding chain: %w", err)
	}
	decoded, err := New(m)
	if err != nil {
		return err
	}
	if in.Labels != nil {
		if err := decoded.SetLabels(in.Labels); err != nil {
			return err
		}
	}
	*c = *decoded
	return nil
}
