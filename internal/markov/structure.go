package markov

import "repro/internal/matrix"

// Structural diagnostics for chains. Stationary-distribution-based
// workflows (Bayesian time reversal at the stationary prior, long-run
// trajectory simulation) silently assume the chain is irreducible and
// aperiodic; these predicates let callers check instead of assume.

// IsIrreducible reports whether every state can reach every other state
// through transitions of positive probability.
func (c *Chain) IsIrreducible() bool {
	n := c.N()
	if n == 1 {
		return true
	}
	// Reachability from each state via BFS on the positive-probability
	// graph. O(n^3) worst case, fine for the domain sizes in play.
	for start := 0; start < n; start++ {
		seen := make([]bool, n)
		queue := []int{start}
		seen[start] = true
		count := 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if !seen[v] && c.p.At(u, v) > 0 {
					seen[v] = true
					count++
					queue = append(queue, v)
				}
			}
		}
		if count != n {
			return false
		}
	}
	return true
}

// Period returns the period of the given state: the gcd of the lengths
// of all cycles through it, or 0 if the state lies on no cycle. A chain
// is aperiodic iff every state's period is 1; for irreducible chains
// all states share the same period.
func (c *Chain) Period(state int) int {
	n := c.N()
	if state < 0 || state >= n {
		return 0
	}
	// BFS layering from the state; for every edge u -> v with u at depth
	// du and v at depth dv, any return cycle through that edge has
	// length du + 1 - dv (mod cycles): gcd over all such closures gives
	// the period. Standard trick: period = gcd over edges u->v of
	// (depth[u] + 1 - depth[v]) restricted to reachable u, v.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[state] = 0
	queue := []int{state}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if c.p.At(u, v) > 0 && depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	g := 0
	for u := 0; u < n; u++ {
		if depth[u] < 0 {
			continue
		}
		for v := 0; v < n; v++ {
			if c.p.At(u, v) > 0 && depth[v] >= 0 {
				g = gcd(g, depth[u]+1-depth[v])
			}
		}
	}
	if g < 0 {
		g = -g
	}
	return g
}

// IsAperiodic reports whether every state has period 1.
func (c *Chain) IsAperiodic() bool {
	for s := 0; s < c.N(); s++ {
		if c.Period(s) != 1 {
			return false
		}
	}
	return true
}

// IsErgodic reports whether the chain is both irreducible and
// aperiodic, i.e. has a unique stationary distribution that power
// iteration converges to from any start.
func (c *Chain) IsErgodic() bool { return c.IsIrreducible() && c.IsAperiodic() }

// MixingTime returns the smallest number of steps after which the
// distributions started from every point mass are within tol of each
// other in L1 (an empirical mixing-time proxy: once all starting points
// agree, the chain has forgotten its origin). It returns 0, false if
// that does not happen within maxSteps — e.g. for reducible or periodic
// chains.
//
// Mixing speed is the structural counterpart of temporal privacy
// leakage: a fast-mixing chain forgets the past quickly, so BPL
// saturates early and low; a slow-mixing chain carries information
// across many releases (see TestMixingTimeTracksLeakage in the core
// package's integration tests).
func (c *Chain) MixingTime(tol float64, maxSteps int) (int, bool) {
	if tol <= 0 {
		tol = 1e-3
	}
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	n := c.N()
	if n == 1 {
		return 0, true
	}
	dists := make([]matrix.Vector, n)
	for i := range dists {
		dists[i] = matrix.NewVector(n)
		dists[i][i] = 1
	}
	for step := 1; step <= maxSteps; step++ {
		for i := range dists {
			next, err := c.Propagate(dists[i])
			if err != nil {
				return 0, false
			}
			dists[i] = next
		}
		worst := 0.0
		for i := 1; i < n; i++ {
			if d := dists[0].L1Distance(dists[i]); d > worst {
				worst = d
			}
		}
		if worst <= tol {
			return step, true
		}
	}
	return 0, false
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
