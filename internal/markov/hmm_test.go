package markov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func testHMM(t *testing.T) *HMM {
	t.Helper()
	h, err := NewHMM(
		matrix.MustFromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}}),
		matrix.MustFromRows([][]float64{{0.8, 0.1, 0.1}, {0.1, 0.1, 0.8}}),
		matrix.Vector{0.6, 0.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHMMValidation(t *testing.T) {
	trans := matrix.MustFromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	emit := matrix.MustFromRows([][]float64{{1, 0}, {0, 1}})
	init := matrix.Vector{0.5, 0.5}
	if _, err := NewHMM(nil, emit, init); err == nil {
		t.Error("nil trans should fail")
	}
	if _, err := NewHMM(matrix.MustFromRows([][]float64{{1, 0}}), emit, init); err == nil {
		t.Error("non-square trans should fail")
	}
	if _, err := NewHMM(trans, matrix.MustFromRows([][]float64{{1, 0}}), init); err == nil {
		t.Error("emission row mismatch should fail")
	}
	if _, err := NewHMM(trans, emit, matrix.Vector{1}); err == nil {
		t.Error("bad init length should fail")
	}
	if _, err := NewHMM(trans, emit, matrix.Vector{0.9, 0.3}); err == nil {
		t.Error("non-distribution init should fail")
	}
	h, err := NewHMM(trans, emit, init)
	if err != nil {
		t.Fatal(err)
	}
	if h.States() != 2 || h.Symbols() != 2 {
		t.Errorf("shape %d/%d", h.States(), h.Symbols())
	}
}

func TestHMMChain(t *testing.T) {
	h := testHMM(t)
	c, err := h.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(0, 0) != 0.9 {
		t.Errorf("chain Prob(0,0) = %v", c.Prob(0, 0))
	}
}

func TestHMMSample(t *testing.T) {
	h := testHMM(t)
	rng := rand.New(rand.NewSource(1))
	states, obs, err := h.Sample(rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 100 || len(obs) != 100 {
		t.Fatal("wrong lengths")
	}
	for i := range states {
		if states[i] < 0 || states[i] >= 2 || obs[i] < 0 || obs[i] >= 3 {
			t.Fatalf("out-of-range draw at %d", i)
		}
	}
	if _, _, err := h.Sample(rng, 0); err == nil {
		t.Error("length 0 should fail")
	}
}

func TestForwardLikelihoodHandComputed(t *testing.T) {
	// Two-state, two-symbol, hand-computable single step:
	// Pr(obs = [0]) = init . emit_col0.
	h, err := NewHMM(
		matrix.MustFromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}}),
		matrix.MustFromRows([][]float64{{0.9, 0.1}, {0.3, 0.7}}),
		matrix.Vector{0.4, 0.6},
	)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := h.LogLikelihood([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.4*0.9 + 0.6*0.3)
	if math.Abs(ll-want) > 1e-12 {
		t.Errorf("ll = %v, want %v", ll, want)
	}
	// Two steps: sum over paths.
	ll2, err := h.LogLikelihood([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// alpha1 = (0.36, 0.18); uniform transition: pred = (0.27, 0.27);
	// emit symbol 1: (0.27*0.1, 0.27*0.7); total = 0.027+0.189 = 0.216.
	want2 := math.Log(0.216)
	if math.Abs(ll2-want2) > 1e-12 {
		t.Errorf("ll2 = %v, want %v", ll2, want2)
	}
}

func TestLogLikelihoodValidation(t *testing.T) {
	h := testHMM(t)
	if _, err := h.LogLikelihood(nil); err == nil {
		t.Error("empty sequence should fail")
	}
	if _, err := h.LogLikelihood([]int{0, 9}); err == nil {
		t.Error("out-of-range symbol should fail")
	}
}

func TestBaumWelchIncreasesLikelihood(t *testing.T) {
	// EM's defining property: the training likelihood never decreases.
	truth := testHMM(t)
	rng := rand.New(rand.NewSource(3))
	var seqs [][]int
	for i := 0; i < 10; i++ {
		_, obs, err := truth.Sample(rng, 200)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, obs)
	}
	start, err := RandomHMM(rng, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	llBefore := 0.0
	for _, s := range seqs {
		ll, err := start.LogLikelihood(s)
		if err != nil {
			t.Fatal(err)
		}
		llBefore += ll
	}
	res, err := start.BaumWelch(seqs, 50, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	llAfter := 0.0
	for _, s := range seqs {
		ll, err := res.Model.LogLikelihood(s)
		if err != nil {
			t.Fatal(err)
		}
		llAfter += ll
	}
	if llAfter < llBefore {
		t.Errorf("EM decreased likelihood: %v -> %v", llBefore, llAfter)
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestBaumWelchRecoversDistinctiveModel(t *testing.T) {
	// With near-deterministic emissions the hidden chain is almost
	// observed, so EM should recover the transition structure (up to
	// state relabeling).
	truth, err := NewHMM(
		matrix.MustFromRows([][]float64{{0.95, 0.05}, {0.10, 0.90}}),
		matrix.MustFromRows([][]float64{{0.99, 0.01}, {0.01, 0.99}}),
		matrix.Vector{0.5, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var seqs [][]int
	for i := 0; i < 20; i++ {
		_, obs, err := truth.Sample(rng, 500)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, obs)
	}
	start, err := RandomHMM(rng, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := start.BaumWelch(seqs, 200, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Model.Trans
	// Accept either labeling of the two states.
	direct := math.Max(math.Abs(got.At(0, 0)-0.95), math.Abs(got.At(1, 1)-0.90))
	swapped := math.Max(math.Abs(got.At(0, 0)-0.90), math.Abs(got.At(1, 1)-0.95))
	if math.Min(direct, swapped) > 0.08 {
		t.Errorf("EM failed to recover transition structure:\n%v", got)
	}
}

func TestBaumWelchValidation(t *testing.T) {
	h := testHMM(t)
	if _, err := h.BaumWelch(nil, 10, 1e-6); err == nil {
		t.Error("no sequences should fail")
	}
	if _, err := h.BaumWelch([][]int{{0, 99}}, 10, 1e-6); err == nil {
		t.Error("bad symbol should fail")
	}
}

func TestBaumWelchOutputIsValidModel(t *testing.T) {
	truth := testHMM(t)
	rng := rand.New(rand.NewSource(21))
	_, obs, err := truth.Sample(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := truth.BaumWelch([][]int{obs}, 20, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Model.Trans.IsRowStochastic(1e-9) || !res.Model.Emit.IsRowStochastic(1e-9) {
		t.Error("EM produced non-stochastic parameters")
	}
	if !res.Model.Init.IsDistribution(1e-9) {
		t.Error("EM produced invalid initial distribution")
	}
	// The learned chain plugs straight into the privacy framework.
	if _, err := res.Model.Chain(); err != nil {
		t.Errorf("learned chain rejected: %v", err)
	}
}

func TestRandomHMMValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h, err := RandomHMM(rng, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.States() != 3 || h.Symbols() != 4 {
		t.Error("wrong shape")
	}
	if _, err := RandomHMM(rng, 0, 2); err == nil {
		t.Error("0 states should fail")
	}
}
