package markov

import "math"

// logOrNegInf returns log(x), mapping x <= 0 to -Inf rather than NaN so
// log-likelihoods degrade gracefully.
func logOrNegInf(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}
