package markov

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// HMM is a discrete hidden Markov model: hidden states evolve by a
// Markov chain (Trans) and each state emits an observable symbol
// (Emit). The paper names the Baum-Welch algorithm as the unsupervised
// route by which an adversary learns temporal correlations from
// observation sequences (Section III-A); this file provides it, built on
// the scaled forward-backward recursions.
type HMM struct {
	// Trans[i][j] = Pr(state_{t+1} = j | state_t = i), row-stochastic.
	Trans *matrix.Matrix
	// Emit[i][k] = Pr(obs = k | state = i), row-stochastic
	// (states x symbols).
	Emit *matrix.Matrix
	// Init[i] = Pr(state_1 = i).
	Init matrix.Vector
}

// NewHMM validates the parameter triple.
func NewHMM(trans, emit *matrix.Matrix, init matrix.Vector) (*HMM, error) {
	if trans == nil || emit == nil {
		return nil, errors.New("markov: nil HMM parameter")
	}
	if trans.Rows() != trans.Cols() {
		return nil, fmt.Errorf("markov: transition matrix must be square, got %dx%d", trans.Rows(), trans.Cols())
	}
	n := trans.Rows()
	if emit.Rows() != n {
		return nil, fmt.Errorf("markov: emission matrix has %d rows for %d states", emit.Rows(), n)
	}
	if len(init) != n {
		return nil, fmt.Errorf("markov: initial distribution length %d for %d states", len(init), n)
	}
	if !trans.IsRowStochastic(1e-6) || !emit.IsRowStochastic(1e-6) {
		return nil, ErrNotStochastic
	}
	if !init.IsDistribution(1e-6) {
		return nil, fmt.Errorf("markov: initial vector is not a distribution")
	}
	return &HMM{Trans: trans.Clone(), Emit: emit.Clone(), Init: init.Clone()}, nil
}

// States returns the number of hidden states.
func (h *HMM) States() int { return h.Trans.Rows() }

// Symbols returns the number of observable symbols.
func (h *HMM) Symbols() int { return h.Emit.Cols() }

// Chain returns the hidden-state transition chain, which is what the
// temporal-privacy framework consumes as P^F.
func (h *HMM) Chain() (*Chain, error) { return New(h.Trans) }

// Sample generates an observation sequence of the given length,
// returning both the hidden states and the observations.
func (h *HMM) Sample(rng *rand.Rand, length int) (states, obs []int, err error) {
	if length <= 0 {
		return nil, nil, fmt.Errorf("markov: length must be positive, got %d", length)
	}
	states = make([]int, length)
	obs = make([]int, length)
	states[0] = Sample(rng, h.Init)
	for t := 0; t < length; t++ {
		if t > 0 {
			states[t] = Sample(rng, h.Trans.Row(states[t-1]))
		}
		obs[t] = Sample(rng, h.Emit.Row(states[t]))
	}
	return states, obs, nil
}

// forwardBackward runs the scaled forward-backward recursions for one
// observation sequence. It returns the per-step scaled forward (alpha)
// and backward (beta) variables, the scaling factors, and the sequence
// log-likelihood.
func (h *HMM) forwardBackward(obs []int) (alpha, beta [][]float64, scale []float64, ll float64, err error) {
	n, T := h.States(), len(obs)
	if T == 0 {
		return nil, nil, nil, 0, errors.New("markov: empty observation sequence")
	}
	for t, o := range obs {
		if o < 0 || o >= h.Symbols() {
			return nil, nil, nil, 0, fmt.Errorf("markov: observation %d at %d outside [0,%d)", o, t, h.Symbols())
		}
	}
	alpha = make([][]float64, T)
	beta = make([][]float64, T)
	scale = make([]float64, T)
	for t := range alpha {
		alpha[t] = make([]float64, n)
		beta[t] = make([]float64, n)
	}
	// Forward with per-step normalization.
	for i := 0; i < n; i++ {
		alpha[0][i] = h.Init[i] * h.Emit.At(i, obs[0])
	}
	for t := 0; t < T; t++ {
		if t > 0 {
			for j := 0; j < n; j++ {
				s := 0.0
				for i := 0; i < n; i++ {
					s += alpha[t-1][i] * h.Trans.At(i, j)
				}
				alpha[t][j] = s * h.Emit.At(j, obs[t])
			}
		}
		c := 0.0
		for i := 0; i < n; i++ {
			c += alpha[t][i]
		}
		if c <= 0 {
			return nil, nil, nil, 0, fmt.Errorf("markov: observation sequence has zero likelihood at t=%d", t)
		}
		scale[t] = c
		for i := 0; i < n; i++ {
			alpha[t][i] /= c
		}
		ll += math.Log(c)
	}
	// Backward with the same scaling.
	for i := 0; i < n; i++ {
		beta[T-1][i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += h.Trans.At(i, j) * h.Emit.At(j, obs[t+1]) * beta[t+1][j]
			}
			beta[t][i] = s / scale[t+1]
		}
	}
	return alpha, beta, scale, ll, nil
}

// LogLikelihood returns the log-probability of the observation sequence
// under the model.
func (h *HMM) LogLikelihood(obs []int) (float64, error) {
	_, _, _, ll, err := h.forwardBackward(obs)
	return ll, err
}

// BaumWelchResult reports the outcome of an EM fit.
type BaumWelchResult struct {
	Model         *HMM
	LogLikelihood float64 // total log-likelihood of all sequences at the fitted model
	Iterations    int
	Converged     bool
}

// BaumWelch fits HMM parameters to observation sequences by
// expectation-maximization, starting from the receiver's parameters.
// It stops when the total log-likelihood improves by less than tol or
// after maxIter iterations. A small floor keeps every probability
// strictly positive so the loss functions downstream never see exact
// zeros fabricated by EM round-off.
func (h *HMM) BaumWelch(seqs [][]int, maxIter int, tol float64) (*BaumWelchResult, error) {
	if len(seqs) == 0 {
		return nil, errors.New("markov: no observation sequences")
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-6
	}
	cur := &HMM{Trans: h.Trans.Clone(), Emit: h.Emit.Clone(), Init: h.Init.Clone()}
	n, m := h.States(), h.Symbols()
	prevLL := math.Inf(-1)
	for iter := 1; iter <= maxIter; iter++ {
		transNum := matrix.New(n, n)
		emitNum := matrix.New(n, m)
		initNum := matrix.NewVector(n)
		stateOcc := matrix.NewVector(n)     // sum of gamma over t = 1..T-1 (for transitions)
		stateOccFull := matrix.NewVector(n) // sum over all t (for emissions)
		total := 0.0
		for _, obs := range seqs {
			alpha, beta, scale, ll, err := cur.forwardBackward(obs)
			if err != nil {
				return nil, err
			}
			total += ll
			T := len(obs)
			// gamma_t(i) = alpha_t(i) * beta_t(i) (already normalized).
			for t := 0; t < T; t++ {
				for i := 0; i < n; i++ {
					g := alpha[t][i] * beta[t][i]
					if t == 0 {
						initNum[i] += g
					}
					stateOccFull[i] += g
					if t < T-1 {
						stateOcc[i] += g
					}
					emitNum.Set(i, obs[t], emitNum.At(i, obs[t])+g)
				}
			}
			// xi_t(i,j) accumulation.
			for t := 0; t+1 < T; t++ {
				for i := 0; i < n; i++ {
					if alpha[t][i] == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						xi := alpha[t][i] * cur.Trans.At(i, j) * cur.Emit.At(j, obs[t+1]) * beta[t+1][j] / scale[t+1]
						transNum.Set(i, j, transNum.At(i, j)+xi)
					}
				}
			}
		}
		// M-step with a positivity floor.
		const floor = 1e-12
		next := &HMM{Trans: matrix.New(n, n), Emit: matrix.New(n, m), Init: matrix.NewVector(n)}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := floor
				if stateOcc[i] > 0 {
					v += transNum.At(i, j) / stateOcc[i]
				} else if i == j {
					v += 1
				}
				next.Trans.Set(i, j, v)
			}
			for k := 0; k < m; k++ {
				v := floor
				if stateOccFull[i] > 0 {
					v += emitNum.At(i, k) / stateOccFull[i]
				} else {
					v += 1.0 / float64(m)
				}
				next.Emit.Set(i, k, v)
			}
			next.Init[i] = initNum[i] + floor
		}
		if err := next.Trans.NormalizeRows(); err != nil {
			return nil, err
		}
		if err := next.Emit.NormalizeRows(); err != nil {
			return nil, err
		}
		if _, err := next.Init.Normalize(); err != nil {
			return nil, err
		}
		cur = next
		if total-prevLL < tol && iter > 1 {
			return &BaumWelchResult{Model: cur, LogLikelihood: total, Iterations: iter, Converged: true}, nil
		}
		prevLL = total
	}
	return &BaumWelchResult{Model: cur, LogLikelihood: prevLL, Iterations: maxIter, Converged: false}, nil
}

// RandomHMM returns a randomly initialized HMM for EM restarts: rows are
// perturbed-uniform so no symmetry traps EM at the exact uniform fixed
// point.
func RandomHMM(rng *rand.Rand, states, symbols int) (*HMM, error) {
	if states <= 0 || symbols <= 0 {
		return nil, fmt.Errorf("markov: need positive states and symbols, got %d, %d", states, symbols)
	}
	trans := matrix.New(states, states)
	emit := matrix.New(states, symbols)
	initV := matrix.NewVector(states)
	for i := 0; i < states; i++ {
		for j := 0; j < states; j++ {
			trans.Set(i, j, 1+0.5*rng.Float64())
		}
		for k := 0; k < symbols; k++ {
			emit.Set(i, k, 1+0.5*rng.Float64())
		}
		initV[i] = 1 + 0.5*rng.Float64()
	}
	if err := trans.NormalizeRows(); err != nil {
		return nil, err
	}
	if err := emit.NormalizeRows(); err != nil {
		return nil, err
	}
	if _, err := initV.Normalize(); err != nil {
		return nil, err
	}
	return NewHMM(trans, emit, initV)
}
