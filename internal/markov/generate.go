package markov

import (
	"fmt"
	"math/rand"

	"repro/internal/matrix"
)

// Strongest returns the "strongest correlation" transition matrix used
// as the seed for the paper's experiments (Section VI): every row has a
// single cell with probability 1.0, placed on a random permutation so
// that different rows map to different columns. With such a matrix an
// adversary can infer the next (or previous) value exactly, which yields
// the upper-bound privacy leakage of Examples 2 and 3.
func Strongest(rng *rand.Rand, n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	perm := rng.Perm(n)
	m := matrix.New(n, n)
	for i, j := range perm {
		m.Set(i, j, 1)
	}
	return New(m)
}

// IdentityChain returns the n-state identity chain: each state transitions
// to itself with probability 1. This is the extreme correlation of
// Example 1 ("the counts will not change over time") under which
// event-level leakage grows linearly without bound.
func IdentityChain(n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	return New(matrix.Identity(n))
}

// UniformChain returns the n-state chain whose every row is uniform:
// no temporal correlation at all. Under this chain BPL and FPL reduce to
// the per-step privacy leakage PL0 (Fig. 3 (iii)).
func UniformChain(n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	m := matrix.New(n, n)
	u := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, u)
		}
	}
	return New(m)
}

// Smoothed generates the paper's graded-correlation workload: a
// Strongest matrix smoothed by Eq. (25) with parameter s. Smaller s
// means stronger correlation. s = 0 returns the strongest matrix itself.
func Smoothed(rng *rand.Rand, n int, s float64) (*Chain, error) {
	strongest, err := Strongest(rng, n)
	if err != nil {
		return nil, err
	}
	if s == 0 {
		return strongest, nil
	}
	sm, err := matrix.LaplacianSmooth(strongest.p, s)
	if err != nil {
		return nil, err
	}
	return New(sm)
}

// UniformRandom returns a chain whose transition matrix has entries drawn
// i.i.d. uniformly from [0,1] and then row-normalized. This reproduces
// the random matrices used for the Fig. 5 runtime experiments.
func UniformRandom(rng *rand.Rand, n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	if err := m.NormalizeRows(); err != nil {
		return nil, err
	}
	return New(m)
}

// Lazy returns a chain that stays in place with probability stay and
// otherwise moves to a uniformly random other state. stay=1 is the
// identity chain; stay=1/n is the uniform chain. Useful for constructing
// chains with a single interpretable knob.
func Lazy(n int, stay float64) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	if stay < 0 || stay > 1 {
		return nil, fmt.Errorf("markov: stay probability must be in [0,1], got %v", stay)
	}
	m := matrix.New(n, n)
	if n == 1 {
		m.Set(0, 0, 1)
		return New(m)
	}
	off := (1 - stay) / float64(n-1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.Set(i, j, stay)
			} else {
				m.Set(i, j, off)
			}
		}
	}
	return New(m)
}

// Fig2Backward returns the example backward temporal correlation
// Pr(l_{t-1} | l_t) of Fig. 2(a) in the paper.
func Fig2Backward() *Chain {
	return MustNew(matrix.MustFromRows([][]float64{
		{0.1, 0.2, 0.7},
		{0, 0, 1},
		{0.3, 0.3, 0.4},
	}))
}

// Fig2Forward returns the example forward temporal correlation
// Pr(l_t | l_{t-1}) of Fig. 2(b) in the paper.
func Fig2Forward() *Chain {
	return MustNew(matrix.MustFromRows([][]float64{
		{0.2, 0.3, 0.5},
		{0.1, 0.1, 0.8},
		{0.6, 0.2, 0.2},
	}))
}

// ModerateExample returns the 2-state matrix (0.8 0.2; 0 1) used for the
// "moderate temporal correlation" curves of Fig. 3 and Fig. 4(b,c).
func ModerateExample() *Chain {
	return MustNew(matrix.MustFromRows([][]float64{
		{0.8, 0.2},
		{0, 1},
	}))
}

// Fig4aExample returns the 2-state matrix (0.8 0.2; 0.1 0.9) of Fig. 4(a),
// whose BPL supremum exists by the d != 0 case of Theorem 5.
func Fig4aExample() *Chain {
	return MustNew(matrix.MustFromRows([][]float64{
		{0.8, 0.2},
		{0.1, 0.9},
	}))
}

// Fig7Backward returns the backward correlation (0.8 0.2; 0.2 0.8) used
// in the Fig. 7 data-release experiment.
func Fig7Backward() *Chain {
	return MustNew(matrix.MustFromRows([][]float64{
		{0.8, 0.2},
		{0.2, 0.8},
	}))
}

// Fig7Forward returns the forward correlation (0.8 0.2; 0.1 0.9) used in
// the Fig. 7 data-release experiment.
func Fig7Forward() *Chain {
	return MustNew(matrix.MustFromRows([][]float64{
		{0.8, 0.2},
		{0.1, 0.9},
	}))
}
