// Package markov models the temporal correlations of the paper
// (Definition 3): time-homogeneous first-order Markov chains over a
// finite value domain loc = {loc1, ..., locn}, represented by
// row-stochastic transition matrices.
//
// The package provides the two directions the paper needs —
//
//   - forward temporal correlation  P^F: Pr(l_t | l_{t-1})
//   - backward temporal correlation P^B: Pr(l_{t-1} | l_t)
//
// — together with Bayesian time reversal to derive one from the other
// (Section III-A), stationary distributions, trajectory simulation, and
// maximum-likelihood estimation of transition matrices from observed
// traces. Correlation generators used by the paper's experiments live in
// generate.go.
package markov

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// DefaultTol is the numeric tolerance used when validating stochastic
// matrices and distributions.
const DefaultTol = 1e-9

// ErrNotStochastic is returned when a supplied matrix is not
// row-stochastic.
var ErrNotStochastic = errors.New("markov: matrix is not row-stochastic")

// Chain is a time-homogeneous first-order Markov chain over n states.
// The transition matrix P holds Pr(next = j | current = i) at (i, j).
type Chain struct {
	p      *matrix.Matrix
	labels []string
}

// New validates p as a row-stochastic square matrix and wraps it in a
// Chain. The matrix is cloned; the caller keeps ownership of p.
func New(p *matrix.Matrix) (*Chain, error) {
	if p == nil {
		return nil, errors.New("markov: nil transition matrix")
	}
	if p.Rows() != p.Cols() {
		return nil, fmt.Errorf("markov: transition matrix must be square, got %dx%d", p.Rows(), p.Cols())
	}
	if !p.IsRowStochastic(DefaultTol) {
		return nil, ErrNotStochastic
	}
	return &Chain{p: p.Clone()}, nil
}

// MustNew is New but panics on error; intended for fixtures.
func MustNew(p *matrix.Matrix) *Chain {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// FromRows builds a chain from row slices.
func FromRows(rows [][]float64) (*Chain, error) {
	m, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return New(m)
}

// N returns the number of states.
func (c *Chain) N() int { return c.p.Rows() }

// P returns a copy of the transition matrix.
func (c *Chain) P() *matrix.Matrix { return c.p.Clone() }

// Prob returns Pr(next = j | current = i).
func (c *Chain) Prob(i, j int) float64 { return c.p.At(i, j) }

// Row returns a copy of row i of the transition matrix, i.e. the
// distribution of the next state given current state i.
func (c *Chain) Row(i int) matrix.Vector { return c.p.Row(i).Clone() }

// Rows returns a copy of all transition rows — the chain's content in
// the [][]float64 shape wire formats (service configs, the client SDK)
// use.
func (c *Chain) Rows() [][]float64 {
	rows := make([][]float64, c.N())
	for i := range rows {
		rows[i] = c.Row(i)
	}
	return rows
}

// SetLabels attaches human-readable state names (e.g. "loc1".."loc5").
// The length must match the number of states.
func (c *Chain) SetLabels(labels []string) error {
	if len(labels) != c.N() {
		return fmt.Errorf("markov: %d labels for %d states", len(labels), c.N())
	}
	c.labels = append([]string(nil), labels...)
	return nil
}

// Label returns the label for state i, or a generated "locI" name when no
// labels were set.
func (c *Chain) Label(i int) string {
	if c.labels != nil {
		return c.labels[i]
	}
	return fmt.Sprintf("loc%d", i+1)
}

// Propagate returns the distribution after one step: dist * P.
func (c *Chain) Propagate(dist matrix.Vector) (matrix.Vector, error) {
	if len(dist) != c.N() {
		return nil, fmt.Errorf("markov: distribution length %d for %d states", len(dist), c.N())
	}
	return c.p.VecMul(dist)
}

// PropagateK returns the distribution after k steps.
func (c *Chain) PropagateK(dist matrix.Vector, k int) (matrix.Vector, error) {
	if k < 0 {
		return nil, fmt.Errorf("markov: negative step count %d", k)
	}
	cur := dist.Clone()
	for s := 0; s < k; s++ {
		next, err := c.Propagate(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Stationary computes a stationary distribution by power iteration from
// the uniform distribution. maxIter bounds the number of iterations; the
// iteration stops early once successive distributions are within tol in
// L1. For periodic chains (where plain power iteration oscillates) the
// iterate is averaged with its successor, which converges for any chain
// with a unique stationary distribution.
func (c *Chain) Stationary(maxIter int, tol float64) (matrix.Vector, error) {
	if maxIter <= 0 {
		maxIter = 10000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	cur := matrix.Uniform(c.N())
	for it := 0; it < maxIter; it++ {
		next, err := c.Propagate(cur)
		if err != nil {
			return nil, err
		}
		// Lazy averaging damps period-2 oscillation.
		for i := range next {
			next[i] = 0.5*next[i] + 0.5*cur[i]
		}
		if cur.L1Distance(next) <= tol {
			return next, nil
		}
		cur = next
	}
	return cur, nil
}

// Reverse computes the time-reversed chain given the marginal
// distribution prior of the *earlier* time step, per the Bayesian
// inference in Section III-A of the paper:
//
//	Pr(l_{t-1}=j | l_t=k) = Pr(l_t=k | l_{t-1}=j) Pr(l_{t-1}=j) / Σ_j' ...
//
// If a state k is unreachable under prior (zero posterior mass), its
// reversed row is set to uniform, which is the maximally uninformative
// completion and keeps the result row-stochastic.
func (c *Chain) Reverse(prior matrix.Vector) (*Chain, error) {
	n := c.N()
	if len(prior) != n {
		return nil, fmt.Errorf("markov: prior length %d for %d states", len(prior), n)
	}
	if !prior.IsDistribution(1e-6) {
		return nil, fmt.Errorf("markov: prior is not a probability distribution: %v", prior)
	}
	rev := matrix.New(n, n)
	for k := 0; k < n; k++ {
		denom := 0.0
		for j := 0; j < n; j++ {
			denom += c.p.At(j, k) * prior[j]
		}
		if denom <= 0 {
			u := matrix.Uniform(n)
			for j := 0; j < n; j++ {
				rev.Set(k, j, u[j])
			}
			continue
		}
		for j := 0; j < n; j++ {
			rev.Set(k, j, c.p.At(j, k)*prior[j]/denom)
		}
	}
	return New(rev)
}

// Step samples the next state from state i using rng.
func (c *Chain) Step(rng *rand.Rand, i int) int {
	row := c.p.Row(i)
	u := rng.Float64()
	acc := 0.0
	for j, p := range row {
		acc += p
		if u < acc {
			return j
		}
	}
	// Rounding may leave acc slightly below 1; return the last state
	// with positive probability.
	for j := len(row) - 1; j >= 0; j-- {
		if row[j] > 0 {
			return j
		}
	}
	return len(row) - 1
}

// Sample draws an initial state from dist using rng.
func Sample(rng *rand.Rand, dist matrix.Vector) int {
	u := rng.Float64()
	acc := 0.0
	for j, p := range dist {
		acc += p
		if u < acc {
			return j
		}
	}
	return len(dist) - 1
}

// Walk simulates a trajectory of the given length starting from a state
// drawn from initial. It returns the sequence of visited states.
func (c *Chain) Walk(rng *rand.Rand, initial matrix.Vector, length int) ([]int, error) {
	if length <= 0 {
		return nil, fmt.Errorf("markov: walk length must be positive, got %d", length)
	}
	if len(initial) != c.N() {
		return nil, fmt.Errorf("markov: initial distribution length %d for %d states", len(initial), c.N())
	}
	out := make([]int, length)
	out[0] = Sample(rng, initial)
	for t := 1; t < length; t++ {
		out[t] = c.Step(rng, out[t-1])
	}
	return out, nil
}

// MaxCorrelation returns a crude scalar summary of how far the chain is
// from uniform: the maximum over rows of the L1 distance between the row
// and the uniform distribution, scaled to [0, 1]. Zero means every row is
// uniform (no temporal correlation); one means some row is a point mass
// in a chain with many states.
func (c *Chain) MaxCorrelation() float64 {
	n := c.N()
	if n == 1 {
		return 0
	}
	u := matrix.Uniform(n)
	worst := 0.0
	for i := 0; i < n; i++ {
		d := c.p.Row(i).L1Distance(u)
		if d > worst {
			worst = d
		}
	}
	// A point-mass row has L1 distance 2(n-1)/n from uniform.
	return worst / (2 * float64(n-1) / float64(n))
}

// Mix returns a new chain (1-w)*c + w*uniform. w=0 returns a copy of c;
// w=1 returns the fully uniform chain. It is a convenience used in tests
// to build chains of graded strength independently of Laplacian
// smoothing.
func (c *Chain) Mix(w float64) (*Chain, error) {
	if w < 0 || w > 1 || math.IsNaN(w) {
		return nil, fmt.Errorf("markov: mix weight must be in [0,1], got %v", w)
	}
	n := c.N()
	out := matrix.New(n, n)
	u := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, (1-w)*c.p.At(i, j)+w*u)
		}
	}
	return New(out)
}
