package markov

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestIsIrreducible(t *testing.T) {
	cases := []struct {
		name string
		rows [][]float64
		want bool
	}{
		{"2-cycle", [][]float64{{0, 1}, {1, 0}}, true},
		{"identity", [][]float64{{1, 0}, {0, 1}}, false},
		{"absorbing", [][]float64{{0.5, 0.5}, {0, 1}}, false},
		{"full", [][]float64{{0.5, 0.5}, {0.5, 0.5}}, true},
	}
	for _, c := range cases {
		ch := MustNew(matrix.MustFromRows(c.rows))
		if got := ch.IsIrreducible(); got != c.want {
			t.Errorf("%s: IsIrreducible = %v, want %v", c.name, got, c.want)
		}
	}
	one := MustNew(matrix.Identity(1))
	if !one.IsIrreducible() {
		t.Error("single state should be irreducible")
	}
}

func TestPeriod(t *testing.T) {
	cycle2 := MustNew(matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}))
	if got := cycle2.Period(0); got != 2 {
		t.Errorf("2-cycle period = %d, want 2", got)
	}
	cycle3 := MustNew(matrix.MustFromRows([][]float64{
		{0, 1, 0}, {0, 0, 1}, {1, 0, 0},
	}))
	if got := cycle3.Period(1); got != 3 {
		t.Errorf("3-cycle period = %d, want 3", got)
	}
	lazy, err := Lazy(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := lazy.Period(0); got != 1 {
		t.Errorf("lazy chain period = %d, want 1 (self-loop)", got)
	}
	if cycle2.Period(-1) != 0 || cycle2.Period(5) != 0 {
		t.Error("out-of-range state should return 0")
	}
}

func TestIsAperiodicAndErgodic(t *testing.T) {
	cycle2 := MustNew(matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}))
	if cycle2.IsAperiodic() {
		t.Error("2-cycle should be periodic")
	}
	if cycle2.IsErgodic() {
		t.Error("2-cycle should not be ergodic")
	}
	lazy, err := Lazy(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.IsErgodic() {
		t.Error("lazy positive chain should be ergodic")
	}
	id, err := IdentityChain(3)
	if err != nil {
		t.Fatal(err)
	}
	if id.IsErgodic() {
		t.Error("identity chain should not be ergodic (reducible)")
	}
}

func TestErgodicImpliesStationaryConvergence(t *testing.T) {
	// For random ergodic chains, power iteration from two different
	// starts converges to the same stationary distribution.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		c, err := UniformRandom(rng, 2+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsErgodic() {
			continue // uniform-random chains are a.s. ergodic, but be safe
		}
		pi, err := c.Stationary(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Converge from a point mass instead of uniform.
		start := matrix.NewVector(c.N())
		start[0] = 1
		cur := start
		for k := 0; k < 10000; k++ {
			next, err := c.Propagate(cur)
			if err != nil {
				t.Fatal(err)
			}
			if cur.L1Distance(next) < 1e-13 {
				cur = next
				break
			}
			cur = next
		}
		if pi.L1Distance(cur) > 1e-6 {
			t.Errorf("trial %d: stationary mismatch %v", trial, pi.L1Distance(cur))
		}
	}
}

func TestMixingTime(t *testing.T) {
	// The uniform chain mixes in one step.
	uni, err := UniformChain(4)
	if err != nil {
		t.Fatal(err)
	}
	steps, ok := uni.MixingTime(1e-6, 100)
	if !ok || steps != 1 {
		t.Errorf("uniform chain mixing = %d/%v, want 1 step", steps, ok)
	}
	// A stickier chain mixes more slowly.
	fast, err := Lazy(4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Lazy(4, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := fast.MixingTime(1e-3, 10000)
	if !ok {
		t.Fatal("fast chain should mix")
	}
	ss, ok := slow.MixingTime(1e-3, 10000)
	if !ok {
		t.Fatal("slow chain should mix")
	}
	if ss <= fs {
		t.Errorf("sticky chain should mix more slowly: %d vs %d", ss, fs)
	}
	// Identity chain never mixes.
	id, err := IdentityChain(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := id.MixingTime(1e-3, 500); ok {
		t.Error("identity chain must not mix")
	}
	// 2-cycle never mixes (periodic).
	cyc := MustNew(matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}))
	if _, ok := cyc.MixingTime(1e-3, 500); ok {
		t.Error("periodic chain must not mix")
	}
	// Single state mixes trivially.
	one := MustNew(matrix.Identity(1))
	if steps, ok := one.MixingTime(1e-3, 10); !ok || steps != 0 {
		t.Errorf("single state = %d/%v", steps, ok)
	}
}

func TestGCD(t *testing.T) {
	cases := [][3]int{{0, 5, 5}, {6, 4, 2}, {-6, 4, 2}, {7, 3, 1}, {0, 0, 0}}
	for _, c := range cases {
		if got := gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestFig1ChainStructure(t *testing.T) {
	// The Fig. 1 road network's uniform chain should be ergodic: every
	// location is reachable and self-loops exist.
	c := Fig2Forward()
	if !c.IsErgodic() {
		t.Error("Fig2Forward should be ergodic")
	}
}
