package markov

import (
	"math"
	"math/rand"
	"testing"
)

func TestStrongestStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20} {
		c, err := Strongest(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		cols := make(map[int]bool)
		for i := 0; i < n; i++ {
			ones := 0
			var at int
			for j := 0; j < n; j++ {
				switch c.Prob(i, j) {
				case 1:
					ones++
					at = j
				case 0:
				default:
					t.Fatalf("n=%d: entry (%d,%d)=%v not in {0,1}", n, i, j, c.Prob(i, j))
				}
			}
			if ones != 1 {
				t.Fatalf("n=%d: row %d has %d ones", n, i, ones)
			}
			if cols[at] {
				t.Fatalf("n=%d: column %d used twice (not a permutation)", n, at)
			}
			cols[at] = true
		}
	}
	if _, err := Strongest(rng, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestStrongestMaxCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := Strongest(rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxCorrelation(); math.Abs(got-1) > 1e-12 {
		t.Errorf("correlation = %v, want 1", got)
	}
}

func TestIdentityChain(t *testing.T) {
	c, err := IdentityChain(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if c.Prob(i, i) != 1 {
			t.Errorf("Prob(%d,%d) = %v", i, i, c.Prob(i, i))
		}
	}
	if _, err := IdentityChain(-1); err == nil {
		t.Error("negative n should fail")
	}
}

func TestUniformChain(t *testing.T) {
	c, err := UniformChain(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(c.Prob(i, j)-0.25) > 1e-12 {
				t.Errorf("Prob(%d,%d) = %v", i, j, c.Prob(i, j))
			}
		}
	}
	if _, err := UniformChain(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestSmoothedInterpolates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// s=0 must be exactly the strongest matrix (0/1 entries).
	c0, err := Smoothed(rng, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c0.MaxCorrelation(); math.Abs(got-1) > 1e-12 {
		t.Errorf("s=0 correlation = %v", got)
	}
	// Correlation strictly decreases as s grows.
	prev := 2.0
	for _, s := range []float64{0.001, 0.01, 0.1, 1, 10} {
		rngS := rand.New(rand.NewSource(3)) // same permutation each time
		c, err := Smoothed(rngS, 6, s)
		if err != nil {
			t.Fatal(err)
		}
		got := c.MaxCorrelation()
		if got >= prev {
			t.Errorf("s=%v: correlation %v did not decrease from %v", s, got, prev)
		}
		prev = got
	}
}

func TestSmoothedRowStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, s := range []float64{0.005, 0.05, 1} {
		c, err := Smoothed(rng, 50, s)
		if err != nil {
			t.Fatal(err)
		}
		if c.N() != 50 {
			t.Errorf("N = %d", c.N())
		}
	}
}

func TestUniformRandomIsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := UniformRandom(rng, 30)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 30 {
		t.Errorf("N = %d", c.N())
	}
	// Spot-check a row sums to 1 (chain constructor validates all).
	if math.Abs(c.Row(7).Sum()-1) > 1e-9 {
		t.Error("row 7 does not sum to 1")
	}
	if _, err := UniformRandom(rng, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestLazy(t *testing.T) {
	c, err := Lazy(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Prob(0, 0)-0.7) > 1e-12 {
		t.Errorf("stay prob = %v", c.Prob(0, 0))
	}
	if math.Abs(c.Prob(0, 1)-0.1) > 1e-12 {
		t.Errorf("move prob = %v", c.Prob(0, 1))
	}
	one, err := Lazy(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if one.Prob(0, 0) != 1 {
		t.Error("single-state lazy chain must be absorbing")
	}
	if _, err := Lazy(3, 1.5); err == nil {
		t.Error("stay > 1 should fail")
	}
	if _, err := Lazy(0, 0.5); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestFig2Fixtures(t *testing.T) {
	b := Fig2Backward()
	if b.Prob(0, 2) != 0.7 {
		t.Errorf("Fig2Backward Pr(prev=loc3|cur=loc1) = %v, want 0.7", b.Prob(0, 2))
	}
	f := Fig2Forward()
	if f.Prob(2, 0) != 0.6 {
		t.Errorf("Fig2Forward Pr(cur=loc1|prev=loc3) = %v, want 0.6", f.Prob(2, 0))
	}
}

func TestPaperExampleFixtures(t *testing.T) {
	m := ModerateExample()
	if m.Prob(0, 0) != 0.8 || m.Prob(1, 1) != 1 {
		t.Errorf("ModerateExample = %v", m.P())
	}
	a := Fig4aExample()
	if a.Prob(1, 0) != 0.1 {
		t.Errorf("Fig4aExample = %v", a.P())
	}
	fb := Fig7Backward()
	if fb.Prob(0, 1) != 0.2 || fb.Prob(1, 0) != 0.2 {
		t.Errorf("Fig7Backward = %v", fb.P())
	}
	ff := Fig7Forward()
	if ff.Prob(1, 1) != 0.9 {
		t.Errorf("Fig7Forward = %v", ff.P())
	}
}
