package markov

import (
	"encoding/json"
	"testing"
)

func TestChainJSONRoundTrip(t *testing.T) {
	c := Fig2Forward()
	if err := c.SetLabels([]string{"loc1", "loc2", "loc3"}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Chain
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 {
		t.Fatalf("N = %d", back.N())
	}
	if back.P().MaxAbsDiff(c.P()) > 1e-15 {
		t.Error("rows changed in round trip")
	}
	if back.Label(2) != "loc3" {
		t.Errorf("label = %q", back.Label(2))
	}
}

func TestChainJSONNoLabels(t *testing.T) {
	c := ModerateExample()
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Chain
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label(0) != "loc1" {
		t.Errorf("default label = %q", back.Label(0))
	}
}

func TestChainJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"empty rows":     `{"rows":[]}`,
		"non-square":     `{"rows":[[1,0]]}`,
		"non-stochastic": `{"rows":[[0.5,0.6],[0,1]]}`,
		"label count":    `{"rows":[[1,0],[0,1]],"labels":["a"]}`,
	}
	for name, data := range cases {
		var c Chain
		if err := json.Unmarshal([]byte(data), &c); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
