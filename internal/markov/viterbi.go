package markov

import (
	"errors"
	"fmt"
	"math"
)

// Viterbi returns the most likely hidden-state path for an observation
// sequence under the model, together with its log-probability. This is
// the MAP counterpart of the Bayesian filtering the paper's adversary
// performs: given intercepted (noisy) observations, reconstruct the
// victim's most plausible trajectory.
//
// Computation is in log space, so long sequences do not underflow.
func (h *HMM) Viterbi(obs []int) (path []int, logProb float64, err error) {
	T := len(obs)
	if T == 0 {
		return nil, 0, errors.New("markov: empty observation sequence")
	}
	n := h.States()
	for t, o := range obs {
		if o < 0 || o >= h.Symbols() {
			return nil, 0, fmt.Errorf("markov: observation %d at %d outside [0,%d)", o, t, h.Symbols())
		}
	}
	// delta[t][i]: best log-prob of any path ending in state i at t.
	delta := make([]float64, n)
	prevDelta := make([]float64, n)
	back := make([][]int, T)
	for i := 0; i < n; i++ {
		prevDelta[i] = logOrNegInf(h.Init[i]) + logOrNegInf(h.Emit.At(i, obs[0]))
	}
	for t := 1; t < T; t++ {
		back[t] = make([]int, n)
		for j := 0; j < n; j++ {
			best := math.Inf(-1)
			arg := 0
			for i := 0; i < n; i++ {
				v := prevDelta[i] + logOrNegInf(h.Trans.At(i, j))
				if v > best {
					best = v
					arg = i
				}
			}
			delta[j] = best + logOrNegInf(h.Emit.At(j, obs[t]))
			back[t][j] = arg
		}
		prevDelta, delta = delta, prevDelta
	}
	// Terminal state.
	bestEnd, bestVal := 0, math.Inf(-1)
	for i := 0; i < n; i++ {
		if prevDelta[i] > bestVal {
			bestVal = prevDelta[i]
			bestEnd = i
		}
	}
	if math.IsInf(bestVal, -1) {
		return nil, 0, errors.New("markov: observation sequence has zero probability under the model")
	}
	path = make([]int, T)
	path[T-1] = bestEnd
	for t := T - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path, bestVal, nil
}

// PathLogProb returns the joint log-probability of a specific hidden
// path and observation sequence under the model — the quantity Viterbi
// maximizes, exposed for testing and for scoring candidate trajectories.
func (h *HMM) PathLogProb(states, obs []int) (float64, error) {
	if len(states) != len(obs) || len(states) == 0 {
		return 0, fmt.Errorf("markov: need equal, positive lengths, got %d and %d", len(states), len(obs))
	}
	n, m := h.States(), h.Symbols()
	lp := 0.0
	for t := range states {
		if states[t] < 0 || states[t] >= n {
			return 0, fmt.Errorf("markov: state %d at %d outside [0,%d)", states[t], t, n)
		}
		if obs[t] < 0 || obs[t] >= m {
			return 0, fmt.Errorf("markov: observation %d at %d outside [0,%d)", obs[t], t, m)
		}
		if t == 0 {
			lp += logOrNegInf(h.Init[states[0]])
		} else {
			lp += logOrNegInf(h.Trans.At(states[t-1], states[t]))
		}
		lp += logOrNegInf(h.Emit.At(states[t], obs[t]))
	}
	return lp, nil
}
