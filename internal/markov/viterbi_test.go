package markov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestViterbiDeterministicEmissions(t *testing.T) {
	// With identity emissions the observations ARE the states.
	h, err := NewHMM(
		matrix.MustFromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}}),
		matrix.Identity(2),
		matrix.Vector{0.5, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	obs := []int{0, 1, 1, 0, 1}
	path, lp, err := h.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range obs {
		if path[i] != obs[i] {
			t.Fatalf("path = %v, want %v", path, obs)
		}
	}
	want := math.Log(0.5) * 5 // init + 4 transitions; emissions certain
	if math.Abs(lp-want) > 1e-12 {
		t.Errorf("logProb = %v, want %v", lp, want)
	}
}

func TestViterbiPrefersStickyPath(t *testing.T) {
	// Sticky chain, noisy emissions: one outlier observation should be
	// explained as noise, keeping the path constant.
	h, err := NewHMM(
		matrix.MustFromRows([][]float64{{0.95, 0.05}, {0.05, 0.95}}),
		matrix.MustFromRows([][]float64{{0.8, 0.2}, {0.2, 0.8}}),
		matrix.Vector{0.5, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	obs := []int{0, 0, 1, 0, 0}
	path, _, err := h.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range path {
		if s != 0 {
			t.Errorf("position %d: state %d, want 0 (outlier should be noise)", i, s)
		}
	}
}

func TestViterbiIsOptimalBruteForce(t *testing.T) {
	// Compare against exhaustive path enumeration on small instances.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		h, err := RandomHMM(rng, 2+rng.Intn(2), 2+rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		T := 2 + rng.Intn(5)
		obs := make([]int, T)
		for i := range obs {
			obs[i] = rng.Intn(h.Symbols())
		}
		path, lp, err := h.Viterbi(obs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.PathLogProb(path, obs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-lp) > 1e-9 {
			t.Fatalf("trial %d: reported %v but path scores %v", trial, lp, got)
		}
		// Exhaustive check.
		n := h.States()
		total := 1
		for i := 0; i < T; i++ {
			total *= n
		}
		best := math.Inf(-1)
		states := make([]int, T)
		for code := 0; code < total; code++ {
			c := code
			for i := 0; i < T; i++ {
				states[i] = c % n
				c /= n
			}
			v, err := h.PathLogProb(states, obs)
			if err != nil {
				t.Fatal(err)
			}
			if v > best {
				best = v
			}
		}
		if math.Abs(best-lp) > 1e-9 {
			t.Fatalf("trial %d: Viterbi %v vs brute force %v", trial, lp, best)
		}
	}
}

func TestViterbiValidation(t *testing.T) {
	h, err := RandomHMM(rand.New(rand.NewSource(1)), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Viterbi(nil); err == nil {
		t.Error("empty observations should fail")
	}
	if _, _, err := h.Viterbi([]int{0, 9}); err == nil {
		t.Error("out-of-range symbol should fail")
	}
	if _, err := h.PathLogProb([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := h.PathLogProb([]int{9}, []int{0}); err == nil {
		t.Error("bad state should fail")
	}
}

func TestViterbiImpossibleSequence(t *testing.T) {
	// Emissions that make an observation impossible from every state.
	h, err := NewHMM(
		matrix.MustFromRows([][]float64{{1, 0}, {0, 1}}),
		matrix.MustFromRows([][]float64{{1, 0, 0}, {1, 0, 0}}),
		matrix.Vector{0.5, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Viterbi([]int{0, 2}); err == nil {
		t.Error("zero-probability sequence should fail")
	}
}
