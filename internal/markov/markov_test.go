package markov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil matrix should fail")
	}
	if _, err := New(matrix.MustFromRows([][]float64{{1, 0}})); err == nil {
		t.Error("non-square should fail")
	}
	if _, err := New(matrix.MustFromRows([][]float64{{0.5, 0.6}, {0, 1}})); err == nil {
		t.Error("non-stochastic should fail")
	}
	c, err := New(matrix.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 {
		t.Errorf("N = %d", c.N())
	}
}

func TestNewClonesInput(t *testing.T) {
	m := matrix.Identity(2)
	c, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, 0.5)
	m.Set(0, 1, 0.5)
	if c.Prob(0, 0) != 1 {
		t.Error("New did not clone the matrix")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(matrix.MustFromRows([][]float64{{2, -1}, {0, 1}}))
}

func TestFromRows(t *testing.T) {
	c, err := FromRows([][]float64{{0.5, 0.5}, {0.1, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(1, 0) != 0.1 {
		t.Errorf("Prob(1,0) = %v", c.Prob(1, 0))
	}
}

func TestPReturnsCopy(t *testing.T) {
	c := MustNew(matrix.Identity(2))
	p := c.P()
	p.Set(0, 0, 0)
	if c.Prob(0, 0) != 1 {
		t.Error("P() shares storage")
	}
}

func TestRowReturnsCopy(t *testing.T) {
	c := MustNew(matrix.Identity(2))
	r := c.Row(0)
	r[0] = 0
	if c.Prob(0, 0) != 1 {
		t.Error("Row() shares storage")
	}
}

func TestLabels(t *testing.T) {
	c := MustNew(matrix.Identity(2))
	if got := c.Label(0); got != "loc1" {
		t.Errorf("default label = %q", got)
	}
	if err := c.SetLabels([]string{"home", "work"}); err != nil {
		t.Fatal(err)
	}
	if got := c.Label(1); got != "work" {
		t.Errorf("label = %q", got)
	}
	if err := c.SetLabels([]string{"x"}); err == nil {
		t.Error("wrong label count should fail")
	}
}

func TestPropagate(t *testing.T) {
	c := MustNew(matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}))
	d, err := c.Propagate(matrix.Vector{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 || d[1] != 1 {
		t.Errorf("Propagate = %v", d)
	}
	if _, err := c.Propagate(matrix.Vector{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestPropagateKMatchesRepeated(t *testing.T) {
	c := Fig2Forward()
	d0 := matrix.Vector{1, 0, 0}
	d3, err := c.PropagateK(d0, 3)
	if err != nil {
		t.Fatal(err)
	}
	cur := d0.Clone()
	for i := 0; i < 3; i++ {
		cur, err = c.Propagate(cur)
		if err != nil {
			t.Fatal(err)
		}
	}
	if d3.L1Distance(cur) > 1e-12 {
		t.Errorf("PropagateK disagrees with repeated Propagate")
	}
	if _, err := c.PropagateK(d0, -1); err == nil {
		t.Error("negative k should fail")
	}
}

func TestPropagatePreservesDistribution(t *testing.T) {
	c := Fig2Forward()
	d := matrix.Vector{0.2, 0.3, 0.5}
	out, err := c.Propagate(d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsDistribution(1e-12) {
		t.Errorf("Propagate broke distribution: %v (sum %v)", out, out.Sum())
	}
}

func TestStationaryFixedPoint(t *testing.T) {
	c := Fig2Forward()
	pi, err := c.Stationary(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pi.IsDistribution(1e-6) {
		t.Fatalf("stationary not a distribution: %v", pi)
	}
	next, err := c.Propagate(pi)
	if err != nil {
		t.Fatal(err)
	}
	if pi.L1Distance(next) > 1e-6 {
		t.Errorf("stationary not fixed: moved by %v", pi.L1Distance(next))
	}
}

func TestStationaryPeriodicChain(t *testing.T) {
	// A 2-cycle has stationary (1/2, 1/2); plain power iteration
	// oscillates but the damped iteration must converge.
	c := MustNew(matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}))
	pi, err := c.Stationary(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-6 || math.Abs(pi[1]-0.5) > 1e-6 {
		t.Errorf("stationary = %v, want (0.5,0.5)", pi)
	}
}

func TestReverseBayes(t *testing.T) {
	// Hand-checkable 2-state example.
	c := MustNew(matrix.MustFromRows([][]float64{{0.9, 0.1}, {0.5, 0.5}}))
	prior := matrix.Vector{0.5, 0.5}
	rev, err := c.Reverse(prior)
	if err != nil {
		t.Fatal(err)
	}
	// Pr(prev=0 | cur=0) = 0.9*0.5 / (0.9*0.5 + 0.5*0.5) = 0.45/0.7.
	want := 0.45 / 0.7
	if math.Abs(rev.Prob(0, 0)-want) > 1e-12 {
		t.Errorf("rev(0,0) = %v, want %v", rev.Prob(0, 0), want)
	}
	if rev.N() != 2 {
		t.Errorf("N = %d", rev.N())
	}
}

func TestReverseUnreachableStateGetsUniformRow(t *testing.T) {
	// State 1 is unreachable when prior is all mass on state 0 and
	// transitions from 0 never reach 1.
	c := MustNew(matrix.MustFromRows([][]float64{{1, 0}, {0.5, 0.5}}))
	rev, err := c.Reverse(matrix.Vector{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rev.Prob(1, 0)-0.5) > 1e-12 {
		t.Errorf("unreachable row = %v, want uniform", rev.Row(1))
	}
}

func TestReverseErrors(t *testing.T) {
	c := Fig2Forward()
	if _, err := c.Reverse(matrix.Vector{0.5, 0.5}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := c.Reverse(matrix.Vector{0.5, 0.5, 0.5}); err == nil {
		t.Error("non-distribution prior should fail")
	}
}

func TestReverseConsistencyWithJointDistribution(t *testing.T) {
	// For any prior p and forward chain F, the joint distribution
	// J(prev=j, cur=k) = p_j F_jk must satisfy
	// B_kj * Pr(cur=k) == J(j,k) where B = Reverse(p).
	c := Fig2Forward()
	prior := matrix.Vector{0.2, 0.3, 0.5}
	rev, err := c.Reverse(prior)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := c.Propagate(prior)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		for k := 0; k < 3; k++ {
			joint := prior[j] * c.Prob(j, k)
			got := rev.Prob(k, j) * cur[k]
			if math.Abs(joint-got) > 1e-12 {
				t.Errorf("joint(%d,%d): %v vs %v", j, k, joint, got)
			}
		}
	}
}

func TestStepRespectsSupport(t *testing.T) {
	c := MustNew(matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if got := c.Step(rng, 0); got != 1 {
			t.Fatalf("Step from 0 gave %d, want 1", got)
		}
		if got := c.Step(rng, 1); got != 0 {
			t.Fatalf("Step from 1 gave %d, want 0", got)
		}
	}
}

func TestStepFrequencies(t *testing.T) {
	c := MustNew(matrix.MustFromRows([][]float64{{0.25, 0.75}, {0.5, 0.5}}))
	rng := rand.New(rand.NewSource(1))
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if c.Step(rng, 0) == 1 {
			hits++
		}
	}
	freq := float64(hits) / trials
	if math.Abs(freq-0.75) > 0.01 {
		t.Errorf("empirical Pr(0->1) = %v, want ~0.75", freq)
	}
}

func TestSampleFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dist := matrix.Vector{0.1, 0.2, 0.7}
	counts := make([]int, 3)
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[Sample(rng, dist)]++
	}
	for j, want := range dist {
		freq := float64(counts[j]) / trials
		if math.Abs(freq-want) > 0.01 {
			t.Errorf("state %d frequency %v, want ~%v", j, freq, want)
		}
	}
}

func TestWalk(t *testing.T) {
	c := MustNew(matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}))
	rng := rand.New(rand.NewSource(3))
	w, err := c.Walk(rng, matrix.Vector{1, 0}, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1, 0, 1}
	for i, v := range want {
		if w[i] != v {
			t.Fatalf("walk = %v, want %v", w, want)
		}
	}
	if _, err := c.Walk(rng, matrix.Vector{1, 0}, 0); err == nil {
		t.Error("zero length should fail")
	}
	if _, err := c.Walk(rng, matrix.Vector{1}, 3); err == nil {
		t.Error("bad initial should fail")
	}
}

func TestMaxCorrelation(t *testing.T) {
	uni, _ := UniformChain(4)
	if got := uni.MaxCorrelation(); got > 1e-12 {
		t.Errorf("uniform chain correlation = %v, want 0", got)
	}
	id, _ := IdentityChain(4)
	if got := id.MaxCorrelation(); math.Abs(got-1) > 1e-12 {
		t.Errorf("identity chain correlation = %v, want 1", got)
	}
	single := MustNew(matrix.Identity(1))
	if got := single.MaxCorrelation(); got != 0 {
		t.Errorf("1-state correlation = %v", got)
	}
}

func TestMix(t *testing.T) {
	id, _ := IdentityChain(3)
	half, err := id.Mix(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.Prob(0, 0)-(0.5+0.5/3)) > 1e-12 {
		t.Errorf("Prob(0,0) = %v", half.Prob(0, 0))
	}
	full, err := id.Mix(1)
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxCorrelation() > 1e-12 {
		t.Error("Mix(1) should be uniform")
	}
	if _, err := id.Mix(1.5); err == nil {
		t.Error("out-of-range weight should fail")
	}
}
