package markov

import (
	"fmt"

	"repro/internal/matrix"
)

// EstimateMLE estimates a forward transition matrix from observed
// trajectories by maximum likelihood: the (i,j) entry is the fraction of
// observed transitions out of state i that landed in state j. This is
// the supervised estimation route the paper names in Section III-A
// ("the adversaries can learn them from user's historical trajectories
// ... by well studied methods such as Maximum Likelihood estimation").
//
// pseudocount is added to every transition count before normalization
// (Laplace smoothing); with pseudocount = 0, rows of states that were
// never left are set to a point mass on the state itself (the only
// consistent completion for an absorbing observation).
func EstimateMLE(n int, traces [][]int, pseudocount float64) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	if pseudocount < 0 {
		return nil, fmt.Errorf("markov: pseudocount must be non-negative, got %v", pseudocount)
	}
	counts := matrix.New(n, n)
	for ti, tr := range traces {
		for k := 0; k+1 < len(tr); k++ {
			a, b := tr[k], tr[k+1]
			if a < 0 || a >= n || b < 0 || b >= n {
				return nil, fmt.Errorf("markov: trace %d has state out of range [0,%d): %d -> %d", ti, n, a, b)
			}
			counts.Set(a, b, counts.At(a, b)+1)
		}
	}
	p := matrix.New(n, n)
	for i := 0; i < n; i++ {
		total := counts.Row(i).Sum() + pseudocount*float64(n)
		if total == 0 {
			// Never observed leaving state i: treat as absorbing.
			p.Set(i, i, 1)
			continue
		}
		for j := 0; j < n; j++ {
			p.Set(i, j, (counts.At(i, j)+pseudocount)/total)
		}
	}
	return New(p)
}

// EstimateBackwardMLE estimates a backward transition matrix
// Pr(l_{t-1} | l_t) from trajectories by counting reversed transitions.
// This corresponds to learning from "the reversed trajectories"
// (Section III-A).
func EstimateBackwardMLE(n int, traces [][]int, pseudocount float64) (*Chain, error) {
	rev := make([][]int, len(traces))
	for i, tr := range traces {
		r := make([]int, len(tr))
		for k, v := range tr {
			r[len(tr)-1-k] = v
		}
		rev[i] = r
	}
	return EstimateMLE(n, rev, pseudocount)
}

// EmpiricalInitial returns the empirical distribution of trace starting
// states, optionally Laplace-smoothed with pseudocount.
func EmpiricalInitial(n int, traces [][]int, pseudocount float64) (matrix.Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	if pseudocount < 0 {
		return nil, fmt.Errorf("markov: pseudocount must be non-negative, got %v", pseudocount)
	}
	v := matrix.NewVector(n)
	for ti, tr := range traces {
		if len(tr) == 0 {
			continue
		}
		s := tr[0]
		if s < 0 || s >= n {
			return nil, fmt.Errorf("markov: trace %d starts at state %d, out of range [0,%d)", ti, s, n)
		}
		v[s]++
	}
	for i := range v {
		v[i] += pseudocount
	}
	out, err := v.Normalize()
	if err != nil {
		return nil, fmt.Errorf("markov: no observations and zero pseudocount: %w", err)
	}
	return out, nil
}

// LogLikelihood returns the log-likelihood of the traces under the chain
// and initial distribution. Transitions with zero model probability give
// -Inf, as expected for MLE diagnostics.
func (c *Chain) LogLikelihood(initial matrix.Vector, traces [][]int) (float64, error) {
	if len(initial) != c.N() {
		return 0, fmt.Errorf("markov: initial distribution length %d for %d states", len(initial), c.N())
	}
	ll := 0.0
	for ti, tr := range traces {
		if len(tr) == 0 {
			continue
		}
		if tr[0] < 0 || tr[0] >= c.N() {
			return 0, fmt.Errorf("markov: trace %d state out of range: %d", ti, tr[0])
		}
		ll += logOrNegInf(initial[tr[0]])
		for k := 0; k+1 < len(tr); k++ {
			a, b := tr[k], tr[k+1]
			if b < 0 || b >= c.N() {
				return 0, fmt.Errorf("markov: trace %d state out of range: %d", ti, b)
			}
			ll += logOrNegInf(c.Prob(a, b))
		}
	}
	return ll, nil
}
