package markov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestEstimateMLEExactCounts(t *testing.T) {
	// One trace 0->1->0->1->1: transitions 0->1 twice, 1->0 once, 1->1 once.
	traces := [][]int{{0, 1, 0, 1, 1}}
	c, err := EstimateMLE(2, traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(0, 1) != 1 {
		t.Errorf("Pr(0->1) = %v, want 1", c.Prob(0, 1))
	}
	if c.Prob(1, 0) != 0.5 || c.Prob(1, 1) != 0.5 {
		t.Errorf("row 1 = %v", c.Row(1))
	}
}

func TestEstimateMLEUnvisitedStateAbsorbing(t *testing.T) {
	c, err := EstimateMLE(3, [][]int{{0, 1, 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(2, 2) != 1 {
		t.Errorf("unvisited state row = %v, want absorbing", c.Row(2))
	}
}

func TestEstimateMLEPseudocount(t *testing.T) {
	c, err := EstimateMLE(2, [][]int{{0, 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// From state 0: counts (0,1) + pseudo (1,1) = (1,2)/3.
	if math.Abs(c.Prob(0, 0)-1.0/3) > 1e-12 || math.Abs(c.Prob(0, 1)-2.0/3) > 1e-12 {
		t.Errorf("row 0 = %v", c.Row(0))
	}
	// From state 1: no observations, pseudo only -> uniform.
	if math.Abs(c.Prob(1, 0)-0.5) > 1e-12 {
		t.Errorf("row 1 = %v", c.Row(1))
	}
}

func TestEstimateMLEErrors(t *testing.T) {
	if _, err := EstimateMLE(0, nil, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := EstimateMLE(2, [][]int{{0, 5}}, 0); err == nil {
		t.Error("out-of-range state should fail")
	}
	if _, err := EstimateMLE(2, nil, -1); err == nil {
		t.Error("negative pseudocount should fail")
	}
}

func TestEstimateMLERecoversChain(t *testing.T) {
	// Long walks from a known chain: the estimate should converge to it.
	truth := MustNew(matrix.MustFromRows([][]float64{
		{0.7, 0.2, 0.1},
		{0.1, 0.6, 0.3},
		{0.3, 0.3, 0.4},
	}))
	rng := rand.New(rand.NewSource(9))
	var traces [][]int
	for i := 0; i < 20; i++ {
		w, err := truth.Walk(rng, matrix.Uniform(3), 5000)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, w)
	}
	est, err := EstimateMLE(3, traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := est.P().MaxAbsDiff(truth.P()); d > 0.02 {
		t.Errorf("MLE estimate off by %v", d)
	}
}

func TestEstimateBackwardMLEMatchesReversedTraces(t *testing.T) {
	traces := [][]int{{0, 1, 2}}
	// Reversed trace is 2->1->0, so Pr(prev=1|cur... ) as forward chain on
	// reversed data: 2->1 and 1->0 each once.
	c, err := EstimateBackwardMLE(3, traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(2, 1) != 1 || c.Prob(1, 0) != 1 {
		t.Errorf("backward estimate wrong: %v", c.P())
	}
}

func TestBackwardEstimateAgreesWithBayesReversal(t *testing.T) {
	// For a stationary chain, the backward MLE from long traces should
	// approximate the Bayes reversal at the stationary distribution.
	truth := MustNew(matrix.MustFromRows([][]float64{
		{0.6, 0.4},
		{0.2, 0.8},
	}))
	pi, err := truth.Stationary(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bayes, err := truth.Reverse(pi)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var traces [][]int
	for i := 0; i < 10; i++ {
		w, err := truth.Walk(rng, pi, 20000)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, w)
	}
	est, err := EstimateBackwardMLE(2, traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := est.P().MaxAbsDiff(bayes.P()); d > 0.02 {
		t.Errorf("backward MLE off Bayes reversal by %v\nest:\n%v\nbayes:\n%v", d, est.P(), bayes.P())
	}
}

func TestEmpiricalInitial(t *testing.T) {
	traces := [][]int{{0, 1}, {0, 2}, {1, 0}, {}}
	v, err := EmpiricalInitial(3, traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-2.0/3) > 1e-12 || math.Abs(v[1]-1.0/3) > 1e-12 || v[2] != 0 {
		t.Errorf("initial = %v", v)
	}
	if _, err := EmpiricalInitial(3, nil, 0); err == nil {
		t.Error("no data and zero pseudocount should fail")
	}
	u, err := EmpiricalInitial(3, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsDistribution(1e-12) {
		t.Errorf("smoothed initial = %v", u)
	}
	if _, err := EmpiricalInitial(2, [][]int{{9}}, 0); err == nil {
		t.Error("out-of-range start should fail")
	}
}

func TestLogLikelihood(t *testing.T) {
	c := MustNew(matrix.MustFromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}}))
	init := matrix.Vector{0.5, 0.5}
	ll, err := c.LogLikelihood(init, [][]int{{0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.5) * 3
	if math.Abs(ll-want) > 1e-12 {
		t.Errorf("ll = %v, want %v", ll, want)
	}
	// Impossible transition gives -Inf.
	det := MustNew(matrix.MustFromRows([][]float64{{0, 1}, {1, 0}}))
	ll2, err := det.LogLikelihood(init, [][]int{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ll2, -1) {
		t.Errorf("impossible trace ll = %v, want -Inf", ll2)
	}
	if _, err := c.LogLikelihood(matrix.Vector{1}, nil); err == nil {
		t.Error("bad initial length should fail")
	}
	if _, err := c.LogLikelihood(init, [][]int{{0, 7}}); err == nil {
		t.Error("out-of-range state should fail")
	}
}

func TestMLEMaximizesLikelihoodLocally(t *testing.T) {
	// The MLE should beat nearby perturbed chains on the training data.
	truth := MustNew(matrix.MustFromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}}))
	rng := rand.New(rand.NewSource(23))
	w, err := truth.Walk(rng, matrix.Uniform(2), 3000)
	if err != nil {
		t.Fatal(err)
	}
	traces := [][]int{w}
	est, err := EstimateMLE(2, traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	init, err := EmpiricalInitial(2, traces, 1)
	if err != nil {
		t.Fatal(err)
	}
	llBest, err := est.LogLikelihood(init, traces)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{0.05, -0.05} {
		p := est.P()
		p.Set(0, 0, p.At(0, 0)+delta)
		p.Set(0, 1, p.At(0, 1)-delta)
		alt, err := New(p)
		if err != nil {
			continue // perturbation left [0,1]
		}
		ll, err := alt.LogLikelihood(init, traces)
		if err != nil {
			t.Fatal(err)
		}
		if ll > llBest+1e-9 {
			t.Errorf("perturbed chain beats MLE: %v > %v", ll, llBest)
		}
	}
}
