// Package repro is a from-scratch Go reproduction of "Quantifying
// Differential Privacy under Temporal Correlations" (Cao, Yoshikawa,
// Xiao, Xiong - ICDE 2017).
//
// The public API lives in repro/tpl; the experiment harness that
// regenerates every table and figure of the paper is repro/internal/expt
// (driven by cmd/tplbench and the benchmarks in bench_test.go). See
// README.md for the architecture overview and EXPERIMENTS.md for the
// paper-vs-measured record.
package repro
