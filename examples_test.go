package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun builds and smoke-runs every runnable scenario
// under examples/, so the walkthroughs cannot silently rot. Each
// example must compile, exit zero within its timeout, and print
// something.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	bins := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, err := os.Stat(filepath.Join("examples", name, "main.go")); err != nil {
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bins, name)
			build := exec.Command(goBin, "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			done := make(chan struct{})
			cmd := exec.Command(bin)
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				_ = cmd.Process.Kill()
				<-done
				t.Fatalf("example did not finish within 2m\n%s", out)
			}
			if runErr != nil {
				t.Fatalf("run: %v\n%s", runErr, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
